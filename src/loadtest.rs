//! `kor loadtest` — closed-loop throughput measurement of `kor serve`.
//!
//! Spawns an in-process server per [`crate::serve::IoMode`], loads it
//! with a `.korbin` snapshot, and hammers it with the snapshot's canned
//! queries from a fleet of closed-loop keep-alive clients: each client
//! holds one connection, sends a request, waits for the response,
//! thinks for a few milliseconds, repeats. The think time is what makes
//! the comparison honest — it is exactly the regime the event rewrite
//! targets: mostly-idle keep-alive connections pin a blocking worker
//! for their whole lifetime, so the blocking layer serves at most
//! `threads` clients no matter how many connect, while the event layer
//! multiplexes all of them and keeps the workers busy with actual
//! requests.
//!
//! Clients are robust to a server under pressure: a refused connect or
//! an `overloaded` response is retried with deterministic jittered
//! exponential backoff (bounded attempts, then the client gives up on
//! that request and moves on); the report counts `retries` and
//! `gave_up` per mode so saturation is visible rather than silently
//! smoothed over.
//!
//! The report is written to `BENCH_serve.json` (schema documented in
//! `docs/ARCHITECTURE.md`): per-mode QPS, p50/p95/p99/max latency,
//! error, `overloaded`, `retries`, and `gave_up` counts, connection
//! counts, and the server's own `stats.server` section, plus the
//! event-over-blocking speedup.
//! Any response that is neither `ok` nor an `overloaded` error fails
//! the run — under a well-formed canned workload the server has no
//! excuse for one, so CI treats it as a protocol regression.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kor_data::snapshot::Snapshot;

use crate::json::JsonValue;
use crate::serve::registry::Dataset;
use crate::serve::{IoMode, ServeConfig, Server};

/// Configuration for [`run_loadtest`].
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// I/O modes to measure, in order.
    pub modes: Vec<IoMode>,
    /// Server worker threads (identical across modes, so the comparison
    /// is at equal worker count).
    pub threads: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Measurement window per mode (after warmup).
    pub duration: Duration,
    /// Ramp-up excluded from the counts: connections settle and caches
    /// warm.
    pub warmup: Duration,
    /// Per-client pause between a response and the next request.
    pub think: Duration,
    /// Report path.
    pub out: PathBuf,
}

impl Default for LoadtestConfig {
    /// Both modes, 2 server threads, 16 clients, 4 s measured after
    /// 500 ms warmup, 5 ms think time, report to `BENCH_serve.json`.
    fn default() -> Self {
        Self {
            modes: vec![IoMode::Event, IoMode::Blocking],
            threads: 2,
            clients: 16,
            duration: Duration::from_secs(4),
            warmup: Duration::from_millis(500),
            think: Duration::from_millis(5),
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

impl LoadtestConfig {
    /// CI-sized run: same shape as the default, shorter windows.
    pub fn smoke() -> Self {
        Self {
            duration: Duration::from_millis(1500),
            warmup: Duration::from_millis(300),
            ..Self::default()
        }
    }
}

/// Per-client outcome counters.
#[derive(Debug, Default)]
struct ClientTally {
    /// Successful responses inside the measurement window.
    ok: u64,
    /// `overloaded` error responses (expected under saturation).
    overloaded: u64,
    /// Any other error response — a protocol regression under a canned
    /// workload; fails the run.
    other_errors: u64,
    /// Connect failures, timeouts, resets; each costs a reconnect.
    io_errors: u64,
    /// Backoff retries taken (connect refused or `overloaded`).
    retries: u64,
    /// Requests abandoned after the backoff attempt budget ran out.
    gave_up: u64,
    /// Connections opened.
    connections: u64,
    /// Latencies of `ok` responses inside the window, in ms.
    latencies_ms: Vec<f64>,
    /// First non-`overloaded` error response seen, verbatim.
    sample_error: Option<String>,
}

impl ClientTally {
    fn merge(&mut self, other: ClientTally) {
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.other_errors += other.other_errors;
        self.io_errors += other.io_errors;
        self.retries += other.retries;
        self.gave_up += other.gave_up;
        self.connections += other.connections;
        self.latencies_ms.extend(other.latencies_ms);
        if self.sample_error.is_none() {
            self.sample_error = other.sample_error;
        }
    }
}

/// Retry budget per request/connect before a client gives up and moves
/// on. With the 2 ms base doubling to a 128 ms cap this bounds one
/// request's retry tail to roughly half a second.
const BACKOFF_ATTEMPTS: u32 = 8;

/// Jittered exponential backoff with a bounded attempt budget. The
/// jitter is deterministic — a per-client LCG, because the loadtest has
/// no randomness source and its reports must be reproducible — but
/// still de-synchronizes the fleet: each client walks a different
/// pseudo-random delay sequence, so a burst refused together does not
/// retry together.
struct Backoff {
    attempt: u32,
    rng: u64,
}

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            attempt: 0,
            // Odd multiplier spreads consecutive small seeds (client
            // indices) across the LCG's state space.
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next delay (base 2 ms doubling to 128 ms, plus up-to-100% LCG
    /// jitter), or `None` once the attempt budget is spent.
    fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= BACKOFF_ATTEMPTS {
            return None;
        }
        let base_ms = 2u64 << self.attempt.min(6);
        self.attempt += 1;
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter = (self.rng >> 33) % base_ms;
        Some(Duration::from_millis(base_ms + jitter))
    }

    fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Everything one client needs besides the shared request lines and
/// stop flag.
struct ClientSpec {
    addr: SocketAddr,
    /// Starting offset into the canned request lines.
    cursor: usize,
    /// Seed for this client's backoff jitter stream.
    seed: u64,
    measure_from: Instant,
    think: Duration,
    read_timeout: Duration,
}

/// One closed-loop client: keep-alive connection, one request in
/// flight, think time between requests. Round-robins through the canned
/// request lines starting at its own offset. Connect refusals and
/// `overloaded` responses are retried with [`Backoff`]; once the
/// attempt budget is spent the client gives up on that request (or
/// connect round) and moves on.
fn client_loop(spec: &ClientSpec, lines: &[String], stop: &AtomicBool) -> ClientTally {
    let ClientSpec {
        addr,
        mut cursor,
        seed,
        measure_from,
        think,
        read_timeout,
    } = *spec;
    let mut tally = ClientTally::default();
    let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
    let mut backoff = Backoff::new(seed);
    while !stop.load(Ordering::Relaxed) {
        if conn.is_none() {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(read_timeout));
                    match stream.try_clone() {
                        Ok(clone) => {
                            tally.connections += 1;
                            backoff.reset();
                            conn = Some((stream, BufReader::new(clone)));
                        }
                        Err(_) => {
                            tally.io_errors += 1;
                        }
                    }
                }
                Err(_) => {
                    tally.io_errors += 1;
                    match backoff.next_delay() {
                        Some(delay) => {
                            tally.retries += 1;
                            std::thread::sleep(delay);
                        }
                        None => {
                            tally.gave_up += 1;
                            backoff.reset();
                            std::thread::sleep(think.max(Duration::from_millis(1)));
                        }
                    }
                    continue;
                }
            }
        }
        let Some((stream, reader)) = conn.as_mut() else {
            continue;
        };
        let line = &lines[cursor % lines.len()];
        let sent = Instant::now();
        let outcome: Result<String, ()> = (|| {
            stream.write_all(line.as_bytes()).map_err(|_| ())?;
            stream.write_all(b"\n").map_err(|_| ())?;
            let mut resp = String::new();
            match reader.read_line(&mut resp) {
                Ok(0) | Err(_) => Err(()),
                Ok(_) => Ok(resp),
            }
        })();
        match outcome {
            Err(()) => {
                // Timeout, reset, or orderly close (the blocking layer
                // hangs up after answering `overloaded`): reconnect.
                tally.io_errors += 1;
                cursor += 1;
                conn = None;
            }
            Ok(resp) => {
                let done = Instant::now();
                match classify(&resp) {
                    Reply::Ok => {
                        if done >= measure_from {
                            tally.ok += 1;
                            tally
                                .latencies_ms
                                .push(done.duration_since(sent).as_secs_f64() * 1e3);
                        }
                        backoff.reset();
                        cursor += 1;
                    }
                    Reply::Overloaded => {
                        tally.overloaded += 1;
                        // Retry the SAME request after a backoff; give
                        // up on it (cursor advances) once the budget is
                        // spent.
                        match backoff.next_delay() {
                            Some(delay) => {
                                tally.retries += 1;
                                std::thread::sleep(delay);
                                continue;
                            }
                            None => {
                                tally.gave_up += 1;
                                backoff.reset();
                                cursor += 1;
                            }
                        }
                    }
                    Reply::Other => {
                        tally.other_errors += 1;
                        tally
                            .sample_error
                            .get_or_insert_with(|| resp.trim_end().to_string());
                        cursor += 1;
                    }
                }
            }
        }
        std::thread::sleep(think);
    }
    tally
}

enum Reply {
    Ok,
    Overloaded,
    Other,
}

fn classify(resp: &str) -> Reply {
    match JsonValue::parse(resp.trim()) {
        Ok(v) if v.get("ok").and_then(JsonValue::as_bool) == Some(true) => Reply::Ok,
        Ok(v)
            if v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str)
                == Some("overloaded") =>
        {
            Reply::Overloaded
        }
        _ => Reply::Other,
    }
}

/// Renders the snapshot's canned queries as wire request lines
/// (`method: query` against the dataset `name`, default algorithm).
fn request_lines(world: &Snapshot, name: &str) -> Vec<String> {
    let mut lines = Vec::new();
    for set in &world.query_sets {
        for q in &set.queries {
            let keywords: Vec<JsonValue> = q
                .keywords
                .iter()
                .filter_map(|&kw| world.graph.vocab().resolve(kw))
                .map(JsonValue::from)
                .collect();
            let params = JsonValue::obj([
                ("dataset", name.into()),
                ("from", u64::from(q.source.0).into()),
                ("to", u64::from(q.target.0).into()),
                ("keywords", JsonValue::Arr(keywords)),
                ("budget", q.budget.into()),
            ]);
            let req = JsonValue::obj([
                ("id", (lines.len() as u64).into()),
                ("method", "query".into()),
                ("params", params),
            ]);
            lines.push(req.render());
        }
    }
    lines
}

/// Sorted-percentile helper over the merged latency samples.
fn latency_json(mut ms: Vec<f64>) -> JsonValue {
    if ms.is_empty() {
        return JsonValue::Null;
    }
    crate::percentile::sort_samples(&mut ms);
    let pct = |p: f64| crate::percentile::percentile_sorted(&ms, p);
    JsonValue::obj([
        ("p50", pct(0.50).into()),
        ("p95", pct(0.95).into()),
        ("p99", pct(0.99).into()),
        ("max", ms[ms.len() - 1].into()),
    ])
}

/// Asks the (still running) server for its own view of the run.
fn fetch_server_stats(addr: SocketAddr) -> Option<JsonValue> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    conn.write_all(b"{\"id\":\"stats\",\"method\":\"stats\"}\n")
        .ok()?;
    let mut resp = String::new();
    BufReader::new(conn).read_line(&mut resp).ok()?;
    JsonValue::parse(resp.trim())
        .ok()?
        .get("result")
        .and_then(|r| r.get("server"))
        .cloned()
}

/// Measures one I/O mode: boots a server on an ephemeral port, runs the
/// client fleet, returns (report, merged tally).
fn run_mode(
    world: &Snapshot,
    cfg: &LoadtestConfig,
    io: IoMode,
) -> Result<(JsonValue, ClientTally), String> {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: cfg.threads,
        io,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    server
        .registry()
        .insert(Dataset::from_graph("world", world.graph.clone()));
    let addr = server.local_addr();
    let handle = server.start();

    let lines = Arc::new(request_lines(world, "world"));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let measure_from = start + cfg.warmup;
    // Generous enough that a queued blocking-mode connection times out
    // and retries rather than hanging to the end of the run; short
    // enough that several retries fit in the window.
    let read_timeout = Duration::from_millis(750);
    let mut clients = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let lines = Arc::clone(&lines);
        let stop = Arc::clone(&stop);
        let think = cfg.think;
        clients.push(std::thread::spawn(move || {
            let spec = ClientSpec {
                addr,
                cursor: c * 7, // spread clients across the canned set
                seed: c as u64 + 1,
                measure_from,
                think,
                read_timeout,
            };
            client_loop(&spec, &lines, &stop)
        }));
    }
    std::thread::sleep(cfg.warmup + cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut tally = ClientTally::default();
    for t in clients {
        tally.merge(t.join().map_err(|_| "client thread panicked")?);
    }
    let server_stats = fetch_server_stats(addr).unwrap_or(JsonValue::Null);
    handle.shutdown();

    let qps = tally.ok as f64 / cfg.duration.as_secs_f64();
    let report = JsonValue::obj([
        ("io", io.as_str().into()),
        ("qps", qps.into()),
        ("requests_ok", tally.ok.into()),
        ("overloaded", tally.overloaded.into()),
        ("other_errors", tally.other_errors.into()),
        ("io_errors", tally.io_errors.into()),
        ("retries", tally.retries.into()),
        ("gave_up", tally.gave_up.into()),
        ("connections", tally.connections.into()),
        ("latency_ms", latency_json(tally.latencies_ms.clone())),
        ("server", server_stats),
    ]);
    Ok((report, tally))
}

/// Runs the full loadtest over an in-memory snapshot and returns the
/// report (no file written) — the library entry point the CLI and the
/// tests share.
///
/// Fails if the snapshot cans no queries, if any client saw a response
/// that was neither `ok` nor `overloaded`, or if a measured mode
/// completed zero requests.
pub fn run_loadtest(world: &Snapshot, cfg: &LoadtestConfig) -> Result<JsonValue, String> {
    if world.query_count() == 0 {
        return Err(
            "snapshot holds no canned queries (generate one with `kor gen`, or can a \
             workload with `kor ingest --per-set`)"
                .into(),
        );
    }
    if cfg.modes.is_empty() {
        return Err("no io modes selected".into());
    }
    let mut mode_reports: Vec<(&'static str, JsonValue)> = Vec::new();
    let mut qps_by_mode: Vec<(IoMode, f64)> = Vec::new();
    for &io in &cfg.modes {
        let (report, tally) = run_mode(world, cfg, io)?;
        if tally.other_errors > 0 {
            return Err(format!(
                "{} non-overloaded error responses in {} mode, e.g.: {}",
                tally.other_errors,
                io.as_str(),
                tally.sample_error.as_deref().unwrap_or("<lost>")
            ));
        }
        if tally.ok == 0 {
            return Err(format!(
                "no successful responses in {} mode ({} io errors)",
                io.as_str(),
                tally.io_errors
            ));
        }
        let qps = report.get("qps").and_then(JsonValue::as_f64).unwrap_or(0.0);
        qps_by_mode.push((io, qps));
        mode_reports.push((io.as_str(), report));
    }

    let mut fields: Vec<(&'static str, JsonValue)> = vec![
        ("created_by", "kor loadtest".into()),
        (
            "dataset",
            JsonValue::obj([
                ("nodes", world.graph.node_count().into()),
                ("edges", world.graph.edge_count().into()),
                ("keywords", world.graph.vocab().len().into()),
                ("canned_queries", world.query_count().into()),
            ]),
        ),
        (
            "config",
            JsonValue::obj([
                ("threads", cfg.threads.into()),
                ("clients", cfg.clients.into()),
                ("duration_ms", (cfg.duration.as_millis() as u64).into()),
                ("warmup_ms", (cfg.warmup.as_millis() as u64).into()),
                ("think_ms", (cfg.think.as_millis() as u64).into()),
            ]),
        ),
        ("modes", JsonValue::obj(mode_reports)),
    ];
    let event = qps_by_mode
        .iter()
        .find(|(io, _)| *io == IoMode::Event)
        .map(|&(_, q)| q);
    let blocking = qps_by_mode
        .iter()
        .find(|(io, _)| *io == IoMode::Blocking)
        .map(|&(_, q)| q);
    if let (Some(e), Some(b)) = (event, blocking) {
        if b > 0.0 {
            fields.push(("speedup_event_over_blocking", (e / b).into()));
        }
    }
    Ok(JsonValue::obj(fields))
}

/// CLI entry point: loads the snapshot from `path`, runs the loadtest,
/// writes the report to `cfg.out`, and returns the report.
pub fn run_loadtest_to_file(path: &Path, cfg: &LoadtestConfig) -> Result<JsonValue, String> {
    let world = kor_data::read_world_auto(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let report = run_loadtest(&world, cfg)?;
    std::fs::write(&cfg.out, report.render() + "\n")
        .map_err(|e| format!("{}: {e}", cfg.out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gen::{generate_world, GenConfig};

    fn tiny_world() -> Snapshot {
        generate_world(&GenConfig::grid(5, 4, 11))
    }

    #[test]
    fn request_lines_cover_every_canned_query() {
        let world = tiny_world();
        let lines = request_lines(&world, "world");
        assert_eq!(lines.len(), world.query_count());
        for line in &lines {
            let v = JsonValue::parse(line).unwrap();
            assert_eq!(v.get("method").and_then(JsonValue::as_str), Some("query"));
            let params = v.get("params").unwrap();
            assert_eq!(
                params.get("dataset").and_then(JsonValue::as_str),
                Some("world")
            );
            assert!(params.get("budget").and_then(JsonValue::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let v = latency_json((1..=100).map(f64::from).collect());
        let p50 = v.get("p50").and_then(JsonValue::as_f64).unwrap();
        let p95 = v.get("p95").and_then(JsonValue::as_f64).unwrap();
        let p99 = v.get("p99").and_then(JsonValue::as_f64).unwrap();
        let max = v.get("max").and_then(JsonValue::as_f64).unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert_eq!(max, 100.0);
        assert!(matches!(latency_json(Vec::new()), JsonValue::Null));
    }

    #[test]
    fn backoff_is_bounded_jittered_and_deterministic() {
        let mut b = Backoff::new(3);
        let mut delays = Vec::new();
        while let Some(d) = b.next_delay() {
            delays.push(d.as_millis() as u64);
        }
        assert_eq!(delays.len() as u32, BACKOFF_ATTEMPTS, "budget is bounded");
        for (i, &d) in delays.iter().enumerate() {
            let base = 2u64 << (i as u32).min(6);
            assert!(d >= base && d < 2 * base, "attempt {i}: {d} vs base {base}");
        }
        assert!(b.next_delay().is_none(), "spent budget stays spent");
        b.reset();
        assert!(b.next_delay().is_some(), "reset restores the budget");
        // Same seed, same sequence; different seeds diverge somewhere.
        let seq = |seed| {
            let mut b = Backoff::new(seed);
            std::iter::from_fn(move || b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3));
        assert_ne!(seq(1), seq(2), "clients must not retry in lockstep");
    }

    #[test]
    fn quick_event_run_produces_a_report() {
        let world = tiny_world();
        let cfg = LoadtestConfig {
            modes: vec![IoMode::Event],
            threads: 1,
            clients: 4,
            duration: Duration::from_millis(400),
            warmup: Duration::from_millis(100),
            think: Duration::from_millis(2),
            ..LoadtestConfig::default()
        };
        let report = run_loadtest(&world, &cfg).unwrap();
        let event = report.get("modes").unwrap().get("event").unwrap();
        assert!(event.get("qps").and_then(JsonValue::as_f64).unwrap() > 0.0);
        assert_eq!(
            event.get("other_errors").and_then(JsonValue::as_u64),
            Some(0)
        );
        // The retry counters are always reported, zero on a calm run.
        assert!(event.get("retries").and_then(JsonValue::as_u64).is_some());
        assert!(event.get("gave_up").and_then(JsonValue::as_u64).is_some());
        let lat = event.get("latency_ms").unwrap();
        assert!(lat.get("p50").and_then(JsonValue::as_f64).unwrap() > 0.0);
        // Single-mode runs have no speedup field.
        assert!(report.get("speedup_event_over_blocking").is_none());
    }
}
