//! Offline dataset mutation: replay a traffic script against a warm
//! engine, prove the incremental cache invalidation sound, and write
//! the mutated snapshot.
//!
//! This is the batch-side twin of the serve `update_edges` method. The
//! CLI front end (`kor mutate`) reads a `.korbin` snapshot, obtains a
//! mutation script — either generated from a seeded
//! [`kor_data::traffic::TrafficConfig`] or loaded from a JSON file —
//! and replays it phase by phase with [`run_mutate`]:
//!
//! 1. a **warm** engine answers the snapshot's canned queries (warming
//!    the τ/σ context cache, the Opt-2 bound trees, and the greedy
//!    forward trees), then applies each phase with
//!    `KorEngine::apply_edge_mutations` — evicting exactly the cache
//!    entries whose invalidation stamp crossed a changed edge;
//! 2. with `verify` on, a **cold** engine is rebuilt from scratch on
//!    the mutated graph after every phase and both replay the canned
//!    queries; the two answer digests (same FNV-1a fold as
//!    [`crate::batch::BatchReport::result_digest`]) must match bit for
//!    bit, or the run fails — a live check of the byte-identity
//!    contract in `docs/ARCHITECTURE.md`.
//!
//! Scripts serialize to JSON mirroring the wire format of
//! `update_edges` (`{"phases": [[{"from": .., "to": .., "op": ..}]]}`),
//! so a script emitted by `kor mutate --emit-script` replays both
//! offline and over a socket.

use std::sync::Arc;
use std::time::Duration;

use kor_core::{KorEngine, KorQuery, MutationReport};
use kor_data::sharding_from_assignment;
use kor_data::snapshot::Snapshot;
use kor_graph::{EdgeMutation, Graph, MutationKind, NodeId};

use crate::batch::{answer, digest_outcomes, BatchAlgo, QueryOutcome};
use crate::json::JsonValue;

/// Knobs for one [`run_mutate`] replay.
#[derive(Debug, Clone, Copy)]
pub struct MutateConfig {
    /// Algorithm used for the warm-up and verification replays.
    pub algo: BatchAlgo,
    /// Rebuild a cold engine after every phase and require its canned
    /// replay digest to equal the warm engine's.
    pub verify: bool,
}

/// What one phase of the script did to the warm engine.
#[derive(Debug, Clone, Copy)]
pub struct PhaseOutcome {
    /// Mutations applied in this phase.
    pub applied: usize,
    /// Invalidation counters from the engine (epoch, retained/evicted
    /// per cache family).
    pub report: MutationReport,
    /// Canned-replay digest on the warm engine (present when verifying).
    pub warm_digest: Option<u64>,
    /// Canned-replay digest on a cold rebuild (present when verifying).
    pub cold_digest: Option<u64>,
}

/// Everything a mutation replay produced.
#[derive(Debug, Clone)]
pub struct MutateReport {
    /// One entry per script phase, in order.
    pub phases: Vec<PhaseOutcome>,
    /// Whether every phase was digest-verified against a cold engine.
    pub verified: bool,
}

impl MutateReport {
    /// Cache entries kept warm across the whole script.
    pub fn total_retained(&self) -> usize {
        self.phases.iter().map(|p| p.report.total_retained()).sum()
    }

    /// Cache entries evicted across the whole script.
    pub fn total_evicted(&self) -> usize {
        self.phases.iter().map(|p| p.report.total_evicted()).sum()
    }

    /// Render the summary as JSON (same conventions as the batch
    /// summary; digests print as zero-padded hex).
    pub fn to_json(&self) -> String {
        let phases: Vec<JsonValue> = self
            .phases
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("applied", JsonValue::from(p.applied)),
                    ("epoch", p.report.epoch.into()),
                    ("contexts_retained", p.report.contexts_retained.into()),
                    ("contexts_evicted", p.report.contexts_evicted.into()),
                    ("opt2_retained", p.report.opt2_retained.into()),
                    ("opt2_evicted", p.report.opt2_evicted.into()),
                    ("pair_trees_retained", p.report.pair_trees_retained.into()),
                    ("pair_trees_evicted", p.report.pair_trees_evicted.into()),
                ];
                if let Some(d) = p.warm_digest {
                    fields.push(("warm_digest", format!("{d:016x}").into()));
                }
                if let Some(d) = p.cold_digest {
                    fields.push(("cold_digest", format!("{d:016x}").into()));
                }
                JsonValue::obj(fields)
            })
            .collect();
        JsonValue::obj([
            ("phases", JsonValue::Arr(phases)),
            ("verified", self.verified.into()),
            ("retained", self.total_retained().into()),
            ("evicted", self.total_evicted().into()),
        ])
        .render()
    }
}

/// Replays `script` against a warm engine built from `world`, then
/// installs the mutated graph (and a re-derived shard layout, when the
/// snapshot had one) back into `world`.
///
/// With `config.verify` set, the snapshot must carry canned queries;
/// after every phase both the warm engine and a cold rebuild replay
/// them and any digest mismatch aborts with an error describing the
/// phase — that failure mode existing is the point of the flag.
pub fn run_mutate(
    world: &mut Snapshot,
    script: &[Vec<EdgeMutation>],
    config: &MutateConfig,
) -> Result<MutateReport, String> {
    if config.verify && world.query_count() == 0 {
        return Err(
            "--verify needs canned queries to replay (generate with `kor gen` \
             or can a workload with `kor ingest --per-set`)"
                .into(),
        );
    }

    let mut engine = KorEngine::new(Arc::new(world.graph.clone()));
    // Warm the caches before the first phase so carry-over has
    // something to carry; without queries there is nothing to warm (or
    // verify) and the replay is just a fold of `apply_mutations`.
    if world.query_count() > 0 {
        let _ = replay_digest(&engine, world, config.algo)?;
    }

    let mut phases = Vec::with_capacity(script.len());
    for (i, batch) in script.iter().enumerate() {
        let (next, report) = engine
            .apply_edge_mutations(batch)
            .map_err(|e| format!("phase {i}: {e}"))?;
        engine = next;
        let (warm_digest, cold_digest) = if config.verify {
            let warm = replay_digest(&engine, world, config.algo)?;
            let cold_engine = KorEngine::new(Arc::new(engine.graph().clone()));
            let cold = replay_digest(&cold_engine, world, config.algo)?;
            if warm != cold {
                return Err(format!(
                    "phase {i}: warm replay digest {warm:016x} != cold {cold:016x} — \
                     incremental invalidation kept a stale cache entry"
                ));
            }
            (Some(warm), Some(cold))
        } else {
            (None, None)
        };
        phases.push(PhaseOutcome {
            applied: batch.len(),
            report,
            warm_digest,
            cold_digest,
        });
    }

    let mutated = engine.graph().clone();
    if let Some(old) = world.sharding.take() {
        world.sharding = Some(sharding_from_assignment(&mutated, old.assignment));
    }
    world.graph = mutated;
    Ok(MutateReport {
        phases,
        verified: config.verify,
    })
}

/// Answers every canned query of `world` sequentially on `engine` and
/// folds the outcomes into the batch answer digest. Sequential on
/// purpose: the digest is order-defined and mutation replays are about
/// correctness, not throughput.
pub(crate) fn replay_digest<G: AsRef<Graph>>(
    engine: &KorEngine<G>,
    world: &Snapshot,
    algo: BatchAlgo,
) -> Result<u64, String> {
    let graph = engine.graph();
    let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(world.query_count());
    for (set_index, set) in world.query_sets.iter().enumerate() {
        for q in &set.queries {
            let id = outcomes.len();
            let base = QueryOutcome {
                id,
                set_index,
                keyword_count: set.keyword_count,
                latency: Duration::ZERO,
                objective: None,
                budget: None,
                route: None,
                error: None,
            };
            let query = KorQuery::new(graph, q.source, q.target, q.keywords.clone(), q.budget)
                .map_err(|e| e.to_string());
            outcomes.push(match query.and_then(|q| answer(engine, &q, algo, None)) {
                Ok(Some((objective, budget, route))) => QueryOutcome {
                    objective: Some(objective),
                    budget: Some(budget),
                    route: Some(route),
                    ..base
                },
                Ok(None) => base,
                Err(e) => QueryOutcome {
                    error: Some(e),
                    ..base
                },
            });
        }
    }
    Ok(digest_outcomes(&outcomes))
}

/// Renders a script as JSON: `{"phases": [[mutation, ...], ...]}`, each
/// mutation in the `update_edges` wire shape.
pub fn script_to_json(script: &[Vec<EdgeMutation>]) -> String {
    let phases: Vec<JsonValue> = script
        .iter()
        .map(|batch| {
            JsonValue::Arr(
                batch
                    .iter()
                    .map(|m| {
                        let mut fields = vec![
                            ("from", JsonValue::from(u64::from(m.from.0))),
                            ("to", u64::from(m.to.0).into()),
                            ("op", m.kind.op_name().into()),
                        ];
                        match m.kind {
                            MutationKind::Close => {}
                            MutationKind::Reopen { objective, budget }
                            | MutationKind::Scale { objective, budget } => {
                                fields.push(("objective", objective.into()));
                                fields.push(("budget", budget.into()));
                            }
                        }
                        JsonValue::obj(fields)
                    })
                    .collect(),
            )
        })
        .collect();
    JsonValue::obj([("phases", JsonValue::Arr(phases))]).render()
}

/// Parses a script produced by [`script_to_json`] (or written by hand
/// in the same shape). Strict like the wire layer: unknown ops, missing
/// weights, and weights on `close` are errors, not warnings.
pub fn script_from_json(text: &str) -> Result<Vec<Vec<EdgeMutation>>, String> {
    let root = JsonValue::parse(text).map_err(|e| format!("script: {e}"))?;
    let phases = root
        .get("phases")
        .and_then(JsonValue::as_arr)
        .ok_or("script: missing \"phases\" array")?;
    phases
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let batch = phase
                .as_arr()
                .ok_or_else(|| format!("script phase {i}: not an array"))?;
            batch
                .iter()
                .map(|m| parse_script_mutation(m).map_err(|e| format!("script phase {i}: {e}")))
                .collect()
        })
        .collect()
}

fn parse_script_mutation(m: &JsonValue) -> Result<EdgeMutation, String> {
    let node = |key: &str| -> Result<NodeId, String> {
        m.get(key)
            .and_then(JsonValue::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .map(NodeId)
            .ok_or_else(|| format!("mutation needs a u32 {key:?}"))
    };
    let weight = |key: &str| -> Result<f64, String> {
        m.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("op needs a numeric {key:?}"))
    };
    let (from, to) = (node("from")?, node("to")?);
    match m.get("op").and_then(JsonValue::as_str) {
        Some("close") => {
            if m.get("objective").is_some() || m.get("budget").is_some() {
                return Err("weights do not apply to op \"close\"".into());
            }
            Ok(EdgeMutation::close(from, to))
        }
        Some("reopen") => Ok(EdgeMutation::reopen(
            from,
            to,
            weight("objective")?,
            weight("budget")?,
        )),
        Some("scale") => Ok(EdgeMutation::scale(
            from,
            to,
            weight("objective")?,
            weight("budget")?,
        )),
        Some(other) => Err(format!(
            "unknown op {other:?} (expected close, reopen, or scale)"
        )),
        None => Err("mutation needs a string \"op\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_data::{generate_traffic, generate_world, GenConfig, TrafficConfig};

    fn world() -> Snapshot {
        generate_world(&GenConfig::grid(6, 5, 3))
    }

    fn algo() -> BatchAlgo {
        BatchAlgo::BucketBound {
            epsilon: 0.5,
            beta: 1.2,
        }
    }

    #[test]
    fn scripts_round_trip_through_json() {
        let w = world();
        let script = generate_traffic(&w.graph, &TrafficConfig::base(7));
        let json = script_to_json(&script);
        let back = script_from_json(&json).unwrap();
        assert_eq!(script, back);
        // And the rendering is stable (a replayable artifact).
        assert_eq!(json, script_to_json(&back));
    }

    #[test]
    fn malformed_scripts_are_rejected() {
        for (text, needle) in [
            ("{}", "phases"),
            (r#"{"phases": 3}"#, "phases"),
            (
                r#"{"phases": [[{"from": 0, "to": 1, "op": "demolish"}]]}"#,
                "demolish",
            ),
            (
                r#"{"phases": [[{"from": 0, "to": 1, "op": "scale"}]]}"#,
                "objective",
            ),
            (
                r#"{"phases": [[{"from": 0, "to": 1, "op": "close", "budget": 2}]]}"#,
                "close",
            ),
            (
                r#"{"phases": [[{"from": -1, "to": 1, "op": "close"}]]}"#,
                "from",
            ),
        ] {
            let err = script_from_json(text).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn run_mutate_verifies_and_installs_the_mutated_graph() {
        let mut w = world();
        let script = generate_traffic(&w.graph, &TrafficConfig::base(11));
        let before_edges = w.graph.edge_count();
        let report = run_mutate(
            &mut w,
            &script,
            &MutateConfig {
                algo: algo(),
                verify: true,
            },
        )
        .unwrap();
        assert_eq!(report.phases.len(), script.len());
        assert!(report.verified);
        for (p, batch) in report.phases.iter().zip(&script) {
            assert_eq!(p.applied, batch.len());
            assert_eq!(p.warm_digest, p.cold_digest);
        }
        assert_eq!(
            report.phases.last().unwrap().report.epoch,
            script.len() as u64
        );
        // The base profile closes more edges than it reopens, so the
        // installed graph must differ from the input.
        assert_ne!(w.graph.edge_count(), before_edges);
        // Grid worlds are bidirectional, hence strongly connected: every
        // backward tree reaches every node, so every mutation evicts the
        // whole stamped cache. (Directed worlds retain entries — the
        // mutation oracle battery proves that non-vacuously.)
        assert!(report.total_evicted() > 0, "no cache entry was evicted");
        assert_eq!(report.total_retained(), 0);
    }

    #[test]
    fn run_mutate_rederives_sharding() {
        let mut w = world();
        w.sharding = Some(kor_data::compute_sharding(&w.graph, 2));
        let old_assignment = w.sharding.as_ref().unwrap().assignment.clone();
        let script = generate_traffic(&w.graph, &TrafficConfig::base(5));
        run_mutate(
            &mut w,
            &script,
            &MutateConfig {
                algo: algo(),
                verify: false,
            },
        )
        .unwrap();
        let info = w.sharding.as_ref().expect("sharding survives mutation");
        assert_eq!(info.assignment, old_assignment, "assignment is stable");
        kor_data::validate_sharding(&w.graph, info).expect("re-derived layout is consistent");
    }

    #[test]
    fn verify_without_queries_is_an_error() {
        let mut w = world();
        w.query_sets.clear();
        let err = run_mutate(
            &mut w,
            &[],
            &MutateConfig {
                algo: algo(),
                verify: true,
            },
        )
        .unwrap_err();
        assert!(err.contains("canned queries"), "{err}");
    }
}
