//! # kor — Keyword-aware Optimal Route Search
//!
//! A production-quality Rust reproduction of **"Keyword-aware Optimal
//! Route Search"** (Xin Cao, Lisi Chen, Gao Cong, Xiaokui Xiao —
//! PVLDB 5(11), VLDB 2012).
//!
//! Given a directed graph whose nodes carry keywords (points of interest
//! with tags) and whose edges carry an *objective* value (e.g.
//! unpopularity) and a *budget* value (e.g. travel distance), the **KOR
//! query** `⟨v_s, v_t, ψ, Δ⟩` finds the route from `v_s` to `v_t` that
//! minimizes the total objective score while covering every keyword in
//! `ψ` and keeping the total budget within `Δ`. The problem is NP-hard.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — the two-weight keyword graph substrate;
//! * [`index`] — inverted file (in-memory and disk B+-tree);
//! * [`apsp`] — pre-processing: `τ`/`σ` shortest-path structures;
//! * [`core`] — the algorithms: `OSScaling`, `BucketBound`, `Greedy`,
//!   exact/brute-force baselines, and KkR top-k;
//! * [`data`] — synthetic Flickr-like / road-network dataset generators.
//!
//! On top of those it adds three facade layers:
//!
//! * [`batch`] — a parallel front end that answers a whole query
//!   workload over one shared engine and reports per-query latencies
//!   plus an aggregate JSON summary (`kor batch` on the CLI);
//! * [`mod@bench`] — the tracked warm-vs-cold performance baseline
//!   (`kor bench` on the CLI, emitting `BENCH_kor.json`);
//! * [`serve`] — a TCP query service with warm per-dataset engines, a
//!   newline-delimited JSON protocol, and two selectable I/O layers: a
//!   readiness-driven event reactor (default) and the blocking
//!   one-worker-per-connection baseline (`kor serve` on the CLI; wire
//!   contract in `docs/PROTOCOL.md`);
//! * [`loadtest`] — a closed-loop client fleet that measures `serve`
//!   throughput and latency per I/O mode (`kor loadtest` on the CLI,
//!   emitting `BENCH_serve.json`);
//! * [`recover`] — offline crash recovery: replay a mutation journal
//!   over its base world, verify the recovered engine against a
//!   never-crashed twin, and compact the journal into a checkpoint
//!   (`kor recover` on the CLI; operations guide in
//!   `docs/OPERATIONS.md`);
//! * [`shard`] — the scatter-gather router over partitioned datasets:
//!   one warm engine per shard, confinement-proven local answers, and
//!   fused-engine fanout for cross-shard queries (`kor shard` on the
//!   CLI splits a snapshot; `serve`/`batch` route through it);
//! * [`json`] — the strict, dependency-free JSON layer the above
//!   share.
//!
//! ## Quickstart
//!
//! ```
//! use kor::prelude::*;
//!
//! // Build a tiny city graph: nodes carry tags, edges carry
//! // (objective = unpopularity, budget = kilometres).
//! let mut b = GraphBuilder::new();
//! let hotel = b.add_node(["hotel"]);
//! let cafe = b.add_node(["cafe"]);
//! let mall = b.add_node(["shopping mall"]);
//! let station = b.add_node(["station"]);
//! b.add_edge(hotel, cafe, 1.0, 0.5).unwrap();
//! b.add_edge(cafe, mall, 2.0, 1.0).unwrap();
//! b.add_edge(hotel, mall, 1.0, 2.5).unwrap();
//! b.add_edge(mall, station, 1.0, 1.0).unwrap();
//! let graph = b.build().unwrap();
//!
//! // "From the hotel to the station, passing a cafe and a shopping
//! // mall, within 3 km, on the most popular streets."
//! let engine = KorEngine::new(&graph);
//! let query = KorQuery::from_terms(&graph, hotel, station, ["cafe", "shopping mall"], 3.0)
//!     .unwrap();
//! let result = engine.os_scaling(&query, &OsScalingParams::default()).unwrap();
//! let route = result.route.expect("feasible");
//! assert_eq!(route.route.nodes(), &[hotel, cafe, mall, station]);
//! ```

#![deny(missing_docs)]

pub use kor_apsp as apsp;
pub use kor_core as core;
pub use kor_data as data;
pub use kor_graph as graph;
pub use kor_index as index;

pub mod batch;
pub mod bench;
pub mod json;
pub mod loadtest;
pub mod mutate;
pub mod percentile;
pub mod recover;
pub mod serve;
pub mod shard;

/// The most common imports in one place.
pub mod prelude {
    pub use kor_apsp::{
        CachedPairCosts, DenseApsp, Landmarks, PairCosts, PartitionConfig, PartitionedApsp,
        QueryContext, DEFAULT_LANDMARKS,
    };
    pub use kor_core::{
        brute_force, bucket_bound, exact_labeling, greedy, os_scaling, top_k_bucket_bound,
        top_k_os_scaling, BruteForceParams, BucketBoundParams, CacheStats, GreedyMode,
        GreedyParams, GreedyRoute, KorEngine, KorError, KorQuery, OsScalingParams, PreprocessCache,
        RouteResult, ScaleAnchor, SearchResult, SearchStats, TopKResult,
    };
    pub use kor_data::{
        compute_sharding, generate_flickr, generate_roadnet, generate_traffic, generate_workload,
        generate_world, read_snapshot, write_snapshot, CannedQuery, CannedQuerySet, FlickrConfig,
        GenConfig, RoadNetConfig, ShardingInfo, Snapshot, SnapshotError, TagModel, Topology,
        TrafficConfig, WorkloadConfig,
    };
    pub use kor_graph::{
        EdgeMutation, Graph, GraphBuilder, GraphError, KeywordId, MutationError, MutationKind,
        NodeId, QueryKeywords, Route, Vocab,
    };
    pub use kor_index::{DiskInvertedIndex, InvertedIndex};
}
