//! `kor bench` — the tracked warm-vs-cold performance baseline.
//!
//! Runs a **repeated-target** workload (the serve-traffic shape: many
//! queries share popular targets while keywords and budgets vary) through
//! every label-search algorithm twice:
//!
//! * **cold** — the plain entry points, rebuilding the `τ`/`σ`
//!   pre-processing per query (what every caller paid before the
//!   [`kor_core::PreprocessCache`] existed);
//! * **warm** — the same queries through one shared cache, so repeat
//!   targets skip their backward Dijkstras.
//!
//! Both passes must agree **byte for byte** (route node ids and the IEEE
//! bit patterns of the scores); the emitted `BENCH_kor.json` records
//! per-algorithm median/mean latencies, the speedup, label counters, and
//! the cache hit/miss/build counters proving the warm path was
//! exercised. CI runs the `--smoke` profile and archives the JSON so the
//! perf trajectory of the repo is tracked per commit.

use std::path::PathBuf;
use std::time::Instant;

use kor_core::{
    bucket_bound_with_cache, exact_labeling_with_cache, os_scaling_with_cache,
    top_k_bucket_bound_with_cache, top_k_os_scaling_with_cache, BucketBoundParams, KorQuery,
    OsScalingParams, PreprocessCache, RouteResult, SearchStats,
};
use kor_data::{generate_roadnet, generate_workload, RoadNetConfig, WorkloadConfig};
use kor_graph::Graph;
use kor_index::InvertedIndex;

use crate::json::JsonValue;

/// The algorithms the benchmark tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchAlgo {
    /// `OSScaling` (Algorithm 1), paper defaults.
    OsScaling,
    /// `BucketBound` (Algorithm 2), paper defaults.
    BucketBound,
    /// Exact labeling (ground truth).
    Exact,
    /// KkR top-k via `OSScaling`.
    TopKOsScaling(usize),
    /// KkR top-k via `BucketBound`.
    TopKBucketBound(usize),
}

impl BenchAlgo {
    /// Stable name used in the JSON report.
    pub fn name(&self) -> String {
        match self {
            BenchAlgo::OsScaling => "os-scaling".into(),
            BenchAlgo::BucketBound => "bucket-bound".into(),
            BenchAlgo::Exact => "exact".into(),
            BenchAlgo::TopKOsScaling(k) => format!("top-k-os-scaling-k{k}"),
            BenchAlgo::TopKBucketBound(k) => format!("top-k-bucket-bound-k{k}"),
        }
    }

    /// The default tracked set.
    pub fn defaults() -> Vec<BenchAlgo> {
        vec![
            BenchAlgo::OsScaling,
            BenchAlgo::BucketBound,
            BenchAlgo::Exact,
            BenchAlgo::TopKOsScaling(3),
            BenchAlgo::TopKBucketBound(3),
        ]
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Road-network size when no graph file is supplied.
    pub nodes: usize,
    /// Distinct targets in the workload.
    pub targets: usize,
    /// Queries per target (keywords and budget vary per repeat).
    pub per_target: usize,
    /// Base budget `Δ`; repeats scale it by `1.0 + 0.25·(j mod 4)`.
    pub budget: f64,
    /// Workload/graph seed.
    pub seed: u64,
    /// Algorithms to measure.
    pub algos: Vec<BenchAlgo>,
    /// Where to write the JSON report.
    pub out: PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            nodes: 4000,
            targets: 8,
            per_target: 12,
            budget: 25.0,
            seed: 2012,
            algos: BenchAlgo::defaults(),
            out: PathBuf::from("BENCH_kor.json"),
        }
    }
}

impl BenchConfig {
    /// The fast profile CI runs: small graph, few queries, all algos.
    pub fn smoke() -> Self {
        Self {
            nodes: 500,
            targets: 4,
            per_target: 6,
            ..Self::default()
        }
    }
}

/// One query of the repeated-target workload.
struct BenchQuery {
    query: KorQuery,
}

/// A comparable fingerprint of one query's result: route node ids plus
/// the exact bit patterns of both scores.
type Fingerprint = Vec<(Vec<u32>, u64, u64)>;

fn fingerprint(routes: &[RouteResult]) -> Fingerprint {
    routes
        .iter()
        .map(|r| {
            (
                r.route.nodes().iter().map(|n| n.0).collect(),
                r.objective.to_bits(),
                r.budget.to_bits(),
            )
        })
        .collect()
}

/// Builds the repeated-target workload: `targets` (source, target,
/// keyword-pool) specs, each instantiated `per_target` times with rotated
/// keyword subsets and scaled budgets.
fn build_workload(graph: &Graph, index: &InvertedIndex, cfg: &BenchConfig) -> Vec<BenchQuery> {
    let sets = generate_workload(
        graph,
        index,
        &WorkloadConfig {
            keyword_counts: vec![3],
            queries_per_set: cfg.targets,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed: cfg.seed,
        },
    );
    let mut queries = Vec::new();
    for set in &sets {
        for spec in &set.queries {
            let m = spec.keywords.len().max(1);
            for j in 0..cfg.per_target {
                // Rotated subset of the spec's keyword pool: size cycles
                // 1..=m, starting offset walks around the pool.
                let take = 1 + (j % m);
                let kws: Vec<_> = (0..take).map(|i| spec.keywords[(j + i) % m]).collect();
                let delta = cfg.budget * (1.0 + 0.25 * (j % 4) as f64);
                if let Ok(query) = KorQuery::new(graph, spec.source, spec.target, kws, delta) {
                    queries.push(BenchQuery { query });
                }
            }
        }
    }
    queries
}

/// Latency aggregate over one pass.
#[derive(Debug, Clone, Copy)]
struct PassLatency {
    median_us: f64,
    mean_us: f64,
    p95_us: f64,
}

fn latency_of(mut us: Vec<f64>) -> PassLatency {
    crate::percentile::sort_samples(&mut us);
    let pct = |p: f64| crate::percentile::percentile_sorted(&us, p);
    PassLatency {
        median_us: pct(0.50),
        mean_us: if us.is_empty() {
            0.0
        } else {
            us.iter().sum::<f64>() / us.len() as f64
        },
        p95_us: pct(0.95),
    }
}

/// Outcome of one (algorithm, pass) run.
struct PassResult {
    latency: PassLatency,
    stats: SearchStats,
    fingerprints: Vec<Fingerprint>,
}

/// Runs every query through `algo`, with or without the shared cache.
fn run_pass(
    graph: &Graph,
    index: &InvertedIndex,
    queries: &[BenchQuery],
    algo: BenchAlgo,
    cache: Option<&PreprocessCache>,
) -> PassResult {
    let os_params = OsScalingParams::default();
    let bb_params = BucketBoundParams::default();
    let mut lat = Vec::with_capacity(queries.len());
    let mut stats = SearchStats::default();
    let mut fingerprints = Vec::with_capacity(queries.len());
    for q in queries {
        let t0 = Instant::now();
        let (routes, s) = match algo {
            BenchAlgo::OsScaling => {
                let r = os_scaling_with_cache(graph, index, &q.query, &os_params, cache)
                    .expect("valid params");
                (r.route.into_iter().collect::<Vec<_>>(), r.stats)
            }
            BenchAlgo::BucketBound => {
                let r = bucket_bound_with_cache(graph, index, &q.query, &bb_params, cache)
                    .expect("valid params");
                (r.route.into_iter().collect(), r.stats)
            }
            BenchAlgo::Exact => {
                let r = exact_labeling_with_cache(graph, index, &q.query, None, cache)
                    .expect("no deadline");
                (r.route.into_iter().collect(), r.stats)
            }
            BenchAlgo::TopKOsScaling(k) => {
                let r = top_k_os_scaling_with_cache(graph, index, &q.query, &os_params, k, cache)
                    .expect("valid params");
                (r.routes, r.stats)
            }
            BenchAlgo::TopKBucketBound(k) => {
                let r = top_k_bucket_bound_with_cache(graph, index, &q.query, &bb_params, k, cache)
                    .expect("valid params");
                (r.routes, r.stats)
            }
        };
        lat.push(t0.elapsed().as_secs_f64() * 1e6);
        fingerprints.push(fingerprint(&routes));
        // Sum the per-search counters across the pass.
        stats.labels_created += s.labels_created;
        stats.labels_pruned += s.labels_pruned;
        stats.labels_dominated += s.labels_dominated;
        stats.labels_expanded += s.labels_expanded;
        stats.cache_hits += s.cache_hits;
        stats.cache_misses += s.cache_misses;
        stats.trees_built += s.trees_built;
    }
    PassResult {
        latency: latency_of(lat),
        stats,
        fingerprints,
    }
}

/// Everything one algorithm produced, cold and warm.
struct AlgoReport {
    algo: String,
    queries: usize,
    cold: PassLatency,
    warm: PassLatency,
    speedup_median: f64,
    identical: bool,
    labels_created: u64,
    labels_pruned: u64,
    cold_trees_built: u64,
    warm_trees_built: u64,
    warm_cache_hits: u64,
    warm_cache_misses: u64,
    warm_hit_rate: f64,
}

fn latency_json(l: &PassLatency) -> JsonValue {
    JsonValue::obj([
        ("median_us", l.median_us.into()),
        ("mean_us", l.mean_us.into()),
        ("p95_us", l.p95_us.into()),
    ])
}

/// Runs the benchmark and returns the JSON report (also written to
/// `cfg.out` by [`run_bench_to_file`]).
pub fn run_bench(graph: &Graph, cfg: &BenchConfig) -> JsonValue {
    let index = InvertedIndex::build(graph);
    let queries = build_workload(graph, &index, cfg);
    assert!(!queries.is_empty(), "benchmark workload is empty");
    let mut reports = Vec::new();
    for &algo in &cfg.algos {
        // Cold: no cache, per-query rebuild — measured after one untimed
        // warm-up query so allocator/page effects do not skew the first
        // sample.
        let _ = run_pass(graph, &index, &queries[..1], algo, None);
        let cold = run_pass(graph, &index, &queries, algo, None);
        // Warm: one shared cache across the pass; the first query per
        // target misses, every repeat hits.
        let cache = PreprocessCache::new();
        let warm = run_pass(graph, &index, &queries, algo, Some(&cache));
        let identical = cold.fingerprints == warm.fingerprints;
        let cache_stats = cache.stats();
        eprintln!(
            "[bench] {:<24} cold p50 {:>9.1}us | warm p50 {:>9.1}us | ×{:.2} | hits {} misses {} | identical: {identical}",
            algo.name(),
            cold.latency.median_us,
            warm.latency.median_us,
            cold.latency.median_us / warm.latency.median_us.max(f64::MIN_POSITIVE),
            warm.stats.cache_hits,
            warm.stats.cache_misses,
        );
        reports.push(AlgoReport {
            algo: algo.name(),
            queries: queries.len(),
            cold: cold.latency,
            warm: warm.latency,
            speedup_median: cold.latency.median_us / warm.latency.median_us.max(f64::MIN_POSITIVE),
            identical,
            labels_created: warm.stats.labels_created,
            labels_pruned: warm.stats.labels_pruned,
            cold_trees_built: cold.stats.trees_built,
            warm_trees_built: warm.stats.trees_built,
            warm_cache_hits: warm.stats.cache_hits,
            warm_cache_misses: warm.stats.cache_misses,
            warm_hit_rate: cache_stats.hit_rate(),
        });
    }

    let min_speedup = reports
        .iter()
        .map(|r| r.speedup_median)
        .fold(f64::INFINITY, f64::min);
    let all_identical = reports.iter().all(|r| r.identical);
    let algos_json: Vec<JsonValue> = reports
        .iter()
        .map(|r| {
            JsonValue::obj([
                ("algo", r.algo.as_str().into()),
                ("queries", r.queries.into()),
                ("cold", latency_json(&r.cold)),
                ("warm", latency_json(&r.warm)),
                ("speedup_median", r.speedup_median.into()),
                ("identical", r.identical.into()),
                ("labels_created", r.labels_created.into()),
                ("labels_pruned", r.labels_pruned.into()),
                (
                    "cache",
                    JsonValue::obj([
                        ("hits", r.warm_cache_hits.into()),
                        ("misses", r.warm_cache_misses.into()),
                        ("hit_rate", r.warm_hit_rate.into()),
                        ("trees_built_cold", r.cold_trees_built.into()),
                        ("trees_built_warm", r.warm_trees_built.into()),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::obj([
        (
            "config",
            JsonValue::obj([
                ("nodes", graph.node_count().into()),
                ("edges", graph.edge_count().into()),
                ("targets", cfg.targets.into()),
                ("per_target", cfg.per_target.into()),
                ("budget", cfg.budget.into()),
                ("seed", cfg.seed.into()),
            ]),
        ),
        ("algos", JsonValue::Arr(algos_json)),
        (
            "overall",
            JsonValue::obj([
                ("min_speedup_median", min_speedup.into()),
                ("all_identical", all_identical.into()),
            ]),
        ),
    ])
}

/// Compares a fresh report against a committed baseline report,
/// returning every violation (empty ⇒ the gate passes).
///
/// Two regression classes are checked:
///
/// * **warm/cold divergence** — the fresh run's `all_identical` must be
///   true; a byte-level mismatch is a correctness bug, never tolerated;
/// * **median regression** — when the two reports ran the same workload
///   (`config` fields match), each algorithm's warm median must stay
///   within `old × (1 + tolerance)`. When the workloads differ (CI's
///   `--smoke` profile gated against the committed full-profile
///   baseline), absolute latencies are not comparable, so the gate
///   falls back to the scale-free invariant: the warm pass must not be
///   slower than the cold pass beyond tolerance
///   (`speedup_median ≥ 1 / (1 + tolerance)`).
pub fn compare_with_baseline(
    report: &JsonValue,
    baseline: &JsonValue,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    if report
        .get("overall")
        .and_then(|o| o.get("all_identical"))
        .and_then(JsonValue::as_bool)
        != Some(true)
    {
        failures.push("warm/cold divergence: all_identical is false".into());
    }
    let config_field = |doc: &JsonValue, key: &str| {
        doc.get("config")
            .and_then(|c| c.get(key))
            .map(JsonValue::render)
    };
    let same_workload = ["nodes", "edges", "targets", "per_target", "budget", "seed"]
        .iter()
        .all(|k| config_field(report, k) == config_field(baseline, k));
    fn algos_of(doc: &JsonValue) -> Vec<&JsonValue> {
        doc.get("algos")
            .and_then(JsonValue::as_arr)
            .map(|a| a.iter().collect())
            .unwrap_or_default()
    }
    let name_of = |a: &JsonValue| a.get("algo").and_then(JsonValue::as_str).map(str::to_owned);
    let baseline_algos = algos_of(baseline);
    for algo in algos_of(report) {
        let Some(name) = name_of(algo) else { continue };
        // Algorithms without a committed history pass by default.
        let Some(base) = baseline_algos
            .iter()
            .find(|b| name_of(b).as_deref() == Some(&name))
        else {
            continue;
        };
        if same_workload {
            let new_warm = algo
                .get("warm")
                .and_then(|w| w.get("median_us"))
                .and_then(JsonValue::as_f64);
            let old_warm = base
                .get("warm")
                .and_then(|w| w.get("median_us"))
                .and_then(JsonValue::as_f64);
            if let (Some(new), Some(old)) = (new_warm, old_warm) {
                if new > old * (1.0 + tolerance) {
                    failures.push(format!(
                        "{name}: warm median {new:.1}us regressed past \
                         {old:.1}us × (1 + {tolerance})"
                    ));
                }
            }
        } else if let Some(speedup) = algo.get("speedup_median").and_then(JsonValue::as_f64) {
            let floor = 1.0 / (1.0 + tolerance);
            if speedup < floor {
                failures.push(format!(
                    "{name}: warm pass slower than cold (speedup ×{speedup:.2} \
                     < ×{floor:.2}) — cache stopped paying for itself"
                ));
            }
        }
    }
    failures
}

/// Runs the benchmark on `graph` (or a generated road network when
/// `None`) and writes the JSON report to `cfg.out`.
pub fn run_bench_to_file(graph: Option<Graph>, cfg: &BenchConfig) -> Result<JsonValue, String> {
    let graph = match graph {
        Some(g) => g,
        None => {
            let mut road = RoadNetConfig::with_nodes(cfg.nodes);
            road.seed = cfg.seed;
            let g = generate_roadnet(&road);
            eprintln!(
                "[bench] road network: {} nodes, {} edges",
                g.node_count(),
                g.edge_count()
            );
            g
        }
    };
    let report = run_bench(&graph, cfg);
    std::fs::write(&cfg.out, report.render())
        .map_err(|e| format!("writing {}: {e}", cfg.out.display()))?;
    eprintln!("[bench] wrote {}", cfg.out.display());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, BenchConfig) {
        let g = generate_roadnet(&RoadNetConfig::small());
        let cfg = BenchConfig {
            nodes: 0, // unused: graph is supplied
            targets: 3,
            per_target: 4,
            budget: 40.0,
            seed: 7,
            algos: vec![BenchAlgo::OsScaling, BenchAlgo::BucketBound],
            out: PathBuf::from("unused.json"),
        };
        (g, cfg)
    }

    #[test]
    fn report_shape_and_identity() {
        let (g, cfg) = tiny();
        let report = run_bench(&g, &cfg);
        let parsed = JsonValue::parse(&report.render()).expect("report parses");
        let algos = parsed.get("algos").unwrap().as_arr().unwrap();
        assert_eq!(algos.len(), 2);
        for a in algos {
            assert_eq!(a.get("identical").and_then(JsonValue::as_bool), Some(true));
            assert!(a.get("cold").unwrap().get("median_us").is_some());
            let cache = a.get("cache").unwrap();
            // Warm pass must actually hit: 3 targets × 4 repeats ⇒ ≥ 9
            // context hits.
            assert!(cache.get("hits").and_then(JsonValue::as_u64) >= Some(9));
            assert!(
                cache
                    .get("trees_built_warm")
                    .and_then(JsonValue::as_u64)
                    .unwrap()
                    < cache
                        .get("trees_built_cold")
                        .and_then(JsonValue::as_u64)
                        .unwrap()
            );
        }
        assert_eq!(
            parsed
                .get("overall")
                .unwrap()
                .get("all_identical")
                .and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn workload_repeats_targets() {
        let (g, cfg) = tiny();
        let index = InvertedIndex::build(&g);
        let queries = build_workload(&g, &index, &cfg);
        assert_eq!(queries.len(), 3 * 4);
        // Each target appears per_target times per spec (two specs may
        // share a target, so counts are multiples of per_target).
        use std::collections::HashMap;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for q in &queries {
            *counts.entry(q.query.target.0).or_default() += 1;
        }
        for (_, c) in counts {
            assert_eq!(c % 4, 0);
            assert!(c >= 4);
        }
    }

    /// Minimal report document for gate tests.
    fn doc(nodes: u64, warm_median: f64, speedup: f64, identical: bool) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"config":{{"nodes":{nodes},"edges":9,"targets":2,"per_target":2,
                 "budget":25,"seed":1}},
                "algos":[{{"algo":"exact","warm":{{"median_us":{warm_median}}},
                           "speedup_median":{speedup},"identical":{identical}}}],
                "overall":{{"all_identical":{identical}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn baseline_gate_passes_within_tolerance() {
        let base = doc(100, 1000.0, 2.0, true);
        let fresh = doc(100, 1400.0, 1.5, true);
        assert!(compare_with_baseline(&fresh, &base, 0.5).is_empty());
    }

    #[test]
    fn baseline_gate_flags_median_regression_on_same_workload() {
        let base = doc(100, 1000.0, 2.0, true);
        let fresh = doc(100, 1600.0, 2.0, true);
        let failures = compare_with_baseline(&fresh, &base, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("warm median"), "{failures:?}");
    }

    #[test]
    fn baseline_gate_ignores_absolute_medians_across_workloads() {
        // Smoke profile vs full baseline: medians differ wildly but the
        // warm pass still beats cold, so the gate passes...
        let base = doc(4000, 1000.0, 2.0, true);
        let smoke_ok = doc(100, 50_000.0, 3.0, true);
        assert!(compare_with_baseline(&smoke_ok, &base, 0.5).is_empty());
        // ...unless warm is slower than cold beyond tolerance.
        let smoke_bad = doc(100, 50_000.0, 0.5, true);
        let failures = compare_with_baseline(&smoke_bad, &base, 0.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("slower than cold"), "{failures:?}");
    }

    #[test]
    fn baseline_gate_never_tolerates_divergence() {
        let base = doc(100, 1000.0, 2.0, true);
        let fresh = doc(100, 10.0, 100.0, false);
        let failures = compare_with_baseline(&fresh, &base, 10.0);
        assert!(
            failures.iter().any(|f| f.contains("divergence")),
            "{failures:?}"
        );
    }

    #[test]
    fn bench_to_file_writes_json() {
        let (g, mut cfg) = tiny();
        let dir = std::env::temp_dir().join(format!("kor-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        cfg.out = dir.join("BENCH_kor.json");
        run_bench_to_file(Some(g), &cfg).unwrap();
        let text = std::fs::read_to_string(&cfg.out).unwrap();
        assert!(JsonValue::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
