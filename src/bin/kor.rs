//! `kor` — command-line keyword-aware optimal route search.
//!
//! ```bash
//! kor generate flickr --out city.korg --seed 7
//! kor generate road --nodes 2000 --out road.korg
//! kor stats city.korg
//! kor index city.korg --out city.idx
//! kor query city.korg --from 12 --to 99 --keywords jazz,imax --budget 9 \
//!       --algo bucket-bound --k 3
//! ```
//!
//! Subcommands:
//!
//! * `generate flickr|road` — build a synthetic dataset and save it in
//!   the text interchange format of `kor_data::io`;
//! * `gen` — build a seeded scenario world (grid/ring topology, Zipf
//!   keywords, canned query sets) and save it as a binary `.korbin`
//!   snapshot (byte-reproducible per seed; see `docs/DATASETS.md`):
//!
//! ```bash
//! kor gen --topology grid --width 12 --height 10 --seed 42 --out world.korbin
//! ```
//!
//! * `ingest` — convert between the text `.korg` and binary `.korbin`
//!   formats (optionally canning a query workload along the way);
//! * `stats` — print graph statistics;
//! * `index` — build the disk-resident B+-tree inverted file;
//! * `query` — answer a KOR/KkR query with any of the paper's
//!   algorithms;
//! * `shard` — split a snapshot into N shards: compute the node
//!   assignment, cut edges, and escape/enter boundary summary, and save
//!   a sharded `.korbin` (`SHRD`/`BNDR` sections appended; every other
//!   byte unchanged). `kor serve` and `kor batch --canned` route
//!   sharded snapshots through the scatter-gather router:
//!
//! ```bash
//! kor shard world.korbin --shards 4 --out world-4.korbin
//! ```
//!
//! * `batch` — generate a query workload over a dataset and answer it in
//!   parallel over one shared engine, printing per-query latencies and a
//!   JSON summary:
//!
//! ```bash
//! kor batch city.korg --budget 25 --per-set 50 --keywords 2,4,6,8,10 \
//!       --algo bucket-bound --threads 8 --json-out summary.json
//! ```
//!
//! * `serve` — run the TCP query service (newline-delimited JSON; see
//!   `docs/PROTOCOL.md`) with warm engines for the given datasets:
//!
//! ```bash
//! kor serve --addr 127.0.0.1:7878 --threads 8 --dataset city=city.korg
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kor::batch::{run_batch, BatchAlgo, BatchConfig};
use kor::bench::{run_bench_to_file, BenchAlgo, BenchConfig};
use kor::data::gen::{generate_world, GenConfig, Topology};
use kor::data::snapshot::{read_snapshot, write_snapshot};
use kor::data::{generate_traffic, TrafficConfig};
use kor::loadtest::{run_loadtest_to_file, LoadtestConfig};
use kor::mutate::{run_mutate, MutateConfig};
use kor::prelude::*;
use kor::recover::{run_recover_to_file, RecoverConfig};
use kor::serve::registry::Dataset;
use kor::serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `kor help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("ingest") => ingest(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("index") => index(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("batch") => batch(&args[1..]),
        Some("shard") => shard(&args[1..]),
        Some("mutate") => mutate(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("loadtest") => loadtest(&args[1..]),
        Some("recover") => recover(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown subcommand {other:?} (expected one of: {SUBCOMMANDS})"
        )),
    }
}

/// Every subcommand, for the usage screen and error messages.
const SUBCOMMANDS: &str = "generate, gen, ingest, stats, index, query, batch, shard, mutate, \
     bench, serve, loadtest, recover, help";

fn usage() -> &'static str {
    "kor — keyword-aware optimal route search (Cao et al., VLDB 2012)\n\
     \n\
     usage:\n\
     \x20 kor generate flickr [--out FILE] [--seed N] [--small]\n\
     \x20 kor generate road [--nodes N] [--out FILE] [--seed N]\n\
     \x20 kor gen [--topology grid|ring] [--width W --height H | --nodes N]\n\
     \x20         [--chords C] [--seed N] [--vocab V] [--zipf S] [--max-tags T]\n\
     \x20         [--jitter J] [--keywords 2,3] [--per-set N] [--tightness X]\n\
     \x20         [--out world.korbin]\n\
     \x20 kor ingest FILE [--out FILE] [--per-set N] [--keywords 2,4]\n\
     \x20         [--budget X] [--seed N]\n\
     \x20 kor stats FILE\n\
     \x20 kor index FILE [--out FILE.idx]\n\
     \x20 kor query FILE --from ID --to ID --keywords a,b,c --budget X\n\
     \x20           [--algo os-scaling|bucket-bound|greedy|exact] [--k N]\n\
     \x20           [--epsilon E] [--beta B] [--alpha A] [--beam N]\n\
     \x20 kor batch FILE (--budget X | --canned) [--keywords 2,4,6,8,10]\n\
     \x20           [--per-set N] [--algo os-scaling|bucket-bound|greedy]\n\
     \x20           [--threads N] [--seed N] [--epsilon E] [--beta B]\n\
     \x20           [--alpha A] [--beam N] [--json-out FILE] [--quiet]\n\
     \x20 kor shard FILE [--shards N] [--out FILE.korbin]\n\
     \x20 kor mutate FILE [--out FILE.korbin] [--script FILE.json]\n\
     \x20           [--traffic-seed N] [--phases N] [--closures N]\n\
     \x20           [--slowdowns N] [--multiplier-lo X] [--multiplier-hi X]\n\
     \x20           [--no-reopen] [--verify] [--emit-script FILE.json]\n\
     \x20           [--algo os-scaling|bucket-bound|greedy] [--epsilon E]\n\
     \x20           [--beta B] [--alpha A] [--beam N] [--json-out FILE] [--quiet]\n\
     \x20 kor bench [FILE] [--out BENCH_kor.json] [--nodes N] [--targets T]\n\
     \x20           [--per-target Q] [--budget X] [--seed N]\n\
     \x20           [--algos a,b,c] [--smoke]\n\
     \x20           [--compare BASELINE.json] [--tolerance F]\n\
     \x20 kor serve [--addr HOST:PORT] [--threads N] [--io event|blocking]\n\
     \x20           [--queue N] [--dataset [NAME=]FILE]... [--deadline-ms N]\n\
     \x20           [--max-request-bytes N] [--journal DIR]\n\
     \x20 kor loadtest FILE.korbin [--out BENCH_serve.json] [--threads N]\n\
     \x20           [--clients N] [--duration-ms N] [--warmup-ms N]\n\
     \x20           [--think-ms N] [--mode event|blocking|both] [--smoke]\n\
     \x20 kor recover FILE --journal DIR [--name NAME] [--verify] [--compact]\n\
     \x20           [--algo os-scaling|bucket-bound|greedy] [--epsilon E]\n\
     \x20           [--beta B] [--alpha A] [--beam N] [--json-out FILE]\n\
     \x20 kor help\n\
     \n\
     Graph FILE arguments accept both the text .korg format and binary\n\
     .korbin snapshots (sniffed by content, not extension).\n\
     \n\
     Seed contract: `kor gen` output is a pure function of its flags —\n\
     the same knobs and --seed always produce a byte-identical .korbin\n\
     snapshot; changing any knob (not just the seed) may change every\n\
     sampled value. Layout and knobs are documented in docs/DATASETS.md.\n\
     \n\
     `kor serve` speaks newline-delimited JSON over TCP; the wire\n\
     protocol is documented in docs/PROTOCOL.md.\n"
}

/// Parsed command line: positional arguments plus `--name value` flags.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Minimal `--flag value` parser: returns (positional args, flag map).
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if matches!(
                name,
                "small" | "quiet" | "smoke" | "canned" | "verify" | "no-reopen" | "compact"
            ) {
                // boolean flags
                flags.push((name.to_string(), "true".to_string()));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} requires a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// All values of a repeatable flag, in order (`--dataset a --dataset b`).
fn flag_all<'a>(flags: &'a [(String, String)], name: &str) -> Vec<&'a str> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect()
}

fn parse_num<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let kind = positional
        .first()
        .ok_or("generate needs a dataset kind: flickr or road")?;
    let seed: u64 = parse_num(&flags, "seed", 2012)?;
    let out = PathBuf::from(flag(&flags, "out").unwrap_or("graph.korg"));
    let graph = match kind.as_str() {
        "flickr" => {
            let mut cfg = if flag(&flags, "small").is_some() {
                FlickrConfig::small()
            } else {
                FlickrConfig::paper_scale()
            };
            cfg.seed = seed;
            let (graph, stats) = generate_flickr(&cfg);
            println!(
                "generated flickr-like graph: {} locations, {} edges ({} photos, {} trips)",
                stats.locations, stats.edges, stats.photos, stats.total_trips
            );
            graph
        }
        "road" => {
            let nodes: usize = parse_num(&flags, "nodes", 5000)?;
            let mut cfg = RoadNetConfig::with_nodes(nodes);
            cfg.seed = seed;
            let graph = generate_roadnet(&cfg);
            println!(
                "generated road network: {} nodes, {} edges",
                graph.node_count(),
                graph.edge_count()
            );
            graph
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    kor::data::save_graph(&out, &graph).map_err(|e| e.to_string())?;
    println!("saved to {}", out.display());
    Ok(())
}

fn load(path: &str) -> Result<Graph, String> {
    kor::data::load_graph_auto(Path::new(path)).map_err(|e| e.to_string())
}

/// Parses a `--keywords 2,4,6` list of per-set keyword counts.
fn parse_keyword_counts(
    flags: &[(String, String)],
    default: Vec<usize>,
) -> Result<Vec<usize>, String> {
    let counts = match flag(flags, "keywords") {
        None => default,
        Some(s) => s
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.parse()
                    .map_err(|_| format!("--keywords: bad count {t:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    if counts.is_empty() {
        return Err("--keywords needs at least one count".into());
    }
    Ok(counts)
}

/// `kor gen`: build a seeded scenario world and save it as a `.korbin`
/// binary snapshot.
///
/// Seed contract: the output is a pure function of every flag below —
/// identical flags (including `--seed`) produce a byte-identical file.
fn gen(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if let Some(stray) = positional.first() {
        return Err(format!("gen takes no positional arguments (saw {stray:?})"));
    }
    let seed: u64 = parse_num(&flags, "seed", 2012)?;
    let topology = match flag(&flags, "topology").unwrap_or("grid") {
        "grid" => Topology::Grid {
            width: parse_num(&flags, "width", 12)?,
            height: parse_num(&flags, "height", 10)?,
        },
        "ring" => {
            let nodes: usize = parse_num(&flags, "nodes", 100)?;
            Topology::Ring {
                nodes,
                chords: parse_num(&flags, "chords", nodes / 10)?,
            }
        }
        other => return Err(format!("unknown --topology {other:?} (grid or ring)")),
    };
    let base = GenConfig::grid(2, 2, seed);
    let config = GenConfig {
        topology,
        seed,
        vocab_size: parse_num(&flags, "vocab", base.vocab_size)?,
        tag_exponent: parse_num(&flags, "zipf", base.tag_exponent)?,
        max_tags_per_node: parse_num(&flags, "max-tags", base.max_tags_per_node)?,
        weight_jitter: parse_num(&flags, "jitter", base.weight_jitter)?,
        keyword_counts: parse_keyword_counts(&flags, base.keyword_counts)?,
        queries_per_set: parse_num(&flags, "per-set", base.queries_per_set)?,
        budget_tightness: parse_num(&flags, "tightness", base.budget_tightness)?,
    };
    config.validate()?;
    let out = PathBuf::from(flag(&flags, "out").unwrap_or("world.korbin"));
    let world = generate_world(&config);
    write_snapshot(&out, &world).map_err(|e| e.to_string())?;
    println!(
        "generated {} world: {} nodes, {} edges, {} keywords, {} canned queries (seed {seed})",
        config.topology.name(),
        world.graph.node_count(),
        world.graph.edge_count(),
        world.graph.vocab().len(),
        world.query_count(),
    );
    println!("saved to {}", out.display());
    Ok(())
}

/// `kor ingest`: convert a dataset between the text `.korg` format and
/// binary `.korbin` snapshots. Output format follows the `--out`
/// extension (`.korg` → text, anything else → snapshot). For text
/// output, canned queries are dropped (the text format carries only the
/// graph); for snapshot output from a text graph, `--per-set N` cans a
/// generated workload (`--keywords`, `--budget`, `--seed`) so the
/// artifact replays identically everywhere.
fn ingest(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let input = positional.first().ok_or("ingest needs an input file")?;
    let default_out = {
        let p = Path::new(input);
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("dataset");
        p.with_file_name(format!("{stem}.korbin"))
    };
    let out = flag(&flags, "out")
        .map(PathBuf::from)
        .unwrap_or(default_out);
    // Canonicalize before comparing so spelling aliases (`./x` vs `x`,
    // symlinks) cannot slip past the guard and clobber the input.
    // Canonicalization needs the file to exist; a nonexistent --out
    // trivially isn't the input, and a nonexistent input fails on read
    // below with its own error.
    let same_file = match (std::fs::canonicalize(input), std::fs::canonicalize(&out)) {
        (Ok(a), Ok(b)) => a == b,
        _ => out.as_path() == Path::new(input),
    };
    if same_file {
        return Err(format!(
            "refusing to overwrite the input ({}); pass a different --out",
            out.display()
        ));
    }

    // Read (content-sniffed): snapshots keep their canned queries, text
    // graphs start bare.
    let mut world =
        kor::data::read_world_auto(Path::new(input)).map_err(|e| format!("{input}: {e}"))?;

    // Optional workload canning on the way in.
    let per_set: usize = parse_num(&flags, "per-set", 0)?;
    if per_set > 0 {
        let budget: f64 = match flag(&flags, "budget") {
            Some(v) => v.parse().map_err(|_| "--budget: not a number")?,
            None => return Err("--per-set needs --budget for the canned queries".into()),
        };
        let workload = WorkloadConfig {
            keyword_counts: parse_keyword_counts(&flags, vec![2, 4])?,
            queries_per_set: per_set,
            seed: parse_num(&flags, "seed", 42)?,
            ..WorkloadConfig::default()
        };
        let index = InvertedIndex::build(&world.graph);
        world.query_sets = kor::data::generate_workload(&world.graph, &index, &workload)
            .into_iter()
            .map(|set| kor::data::CannedQuerySet {
                keyword_count: set.keyword_count,
                queries: set
                    .queries
                    .into_iter()
                    .map(|q| kor::data::CannedQuery {
                        source: q.source,
                        target: q.target,
                        keywords: q.keywords,
                        budget,
                    })
                    .collect(),
            })
            .collect();
    }

    let is_text_out = out.extension().is_some_and(|e| e == "korg");
    if is_text_out {
        if world.query_count() > 0 {
            eprintln!(
                "note: dropping {} canned queries (the text format carries only the graph)",
                world.query_count()
            );
        }
        kor::data::save_graph(&out, &world.graph).map_err(|e| e.to_string())?;
    } else {
        write_snapshot(&out, &world).map_err(|e| e.to_string())?;
    }
    println!(
        "ingested {}: {} nodes, {} edges, {} canned queries -> {}",
        input,
        world.graph.node_count(),
        world.graph.edge_count(),
        if is_text_out { 0 } else { world.query_count() },
        out.display()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let (positional, _) = parse_flags(args)?;
    let path = positional.first().ok_or("stats needs a graph file")?;
    let graph = load(path)?;
    println!("{}", graph.stats());
    Ok(())
}

fn index(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("index needs a graph file")?;
    let graph = load(path)?;
    let out = PathBuf::from(
        flag(&flags, "out")
            .map(String::from)
            .unwrap_or_else(|| format!("{path}.idx")),
    );
    let disk = DiskInvertedIndex::build(&graph, &out).map_err(|e| e.to_string())?;
    println!(
        "built B+-tree inverted file: {} terms, height {}, at {}",
        disk.term_count(),
        disk.height(),
        out.display()
    );
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("query needs a graph file")?;
    let graph = load(path)?;
    let from: u32 = parse_num(&flags, "from", u32::MAX)?;
    let to: u32 = parse_num(&flags, "to", u32::MAX)?;
    if from == u32::MAX || to == u32::MAX {
        return Err("--from and --to node ids are required".into());
    }
    let budget: f64 = match flag(&flags, "budget") {
        Some(v) => v.parse().map_err(|_| "--budget: not a number")?,
        None => return Err("--budget is required".into()),
    };
    let keywords: Vec<&str> = flag(&flags, "keywords")
        .map(|s| s.split(',').filter(|t| !t.is_empty()).collect())
        .unwrap_or_default();
    let query = KorQuery::from_terms(&graph, NodeId(from), NodeId(to), keywords, budget)
        .map_err(|e| e.to_string())?;

    let engine = KorEngine::new(&graph);
    let algo = flag(&flags, "algo").unwrap_or("os-scaling");
    let k: usize = parse_num(&flags, "k", 1)?;
    let epsilon: f64 = parse_num(&flags, "epsilon", 0.5)?;
    let beta: f64 = parse_num(&flags, "beta", 1.2)?;
    let alpha: f64 = parse_num(&flags, "alpha", 0.5)?;
    let beam: usize = parse_num(&flags, "beam", 1)?;

    let routes: Vec<RouteResult> = match algo {
        "os-scaling" if k <= 1 => engine
            .os_scaling(&query, &OsScalingParams::with_epsilon(epsilon))
            .map_err(|e| e.to_string())?
            .route
            .into_iter()
            .collect(),
        "os-scaling" => {
            engine
                .top_k_os_scaling(&query, &OsScalingParams::with_epsilon(epsilon), k)
                .map_err(|e| e.to_string())?
                .routes
        }
        "bucket-bound" if k <= 1 => engine
            .bucket_bound(&query, &BucketBoundParams::with(epsilon, beta))
            .map_err(|e| e.to_string())?
            .route
            .into_iter()
            .collect(),
        "bucket-bound" => {
            engine
                .top_k_bucket_bound(&query, &BucketBoundParams::with(epsilon, beta), k)
                .map_err(|e| e.to_string())?
                .routes
        }
        "exact" => engine
            .exact(&query)
            .map_err(|e| e.to_string())?
            .route
            .into_iter()
            .collect(),
        "greedy" => {
            let params = GreedyParams {
                alpha,
                beam_width: beam.max(1),
                mode: GreedyMode::KeywordsFirst,
            };
            match engine.greedy(&query, &params).map_err(|e| e.to_string())? {
                Some(g) => {
                    if !g.is_feasible() {
                        println!(
                            "note: greedy route violates a constraint (covers keywords: {}, within budget: {})",
                            g.covers_keywords, g.within_budget
                        );
                    }
                    vec![RouteResult {
                        objective: g.objective,
                        budget: g.budget,
                        route: g.route,
                    }]
                }
                None => Vec::new(),
            }
        }
        other => return Err(format!("unknown --algo {other:?}")),
    };

    if routes.is_empty() {
        println!("no feasible route");
        return Ok(());
    }
    for (i, r) in routes.iter().enumerate() {
        println!(
            "#{} OS {:.4} BS {:.4} ({} stops)",
            i + 1,
            r.objective,
            r.budget,
            r.route.len()
        );
        let described: Vec<String> = r
            .route
            .nodes()
            .iter()
            .map(|&n| {
                let tags: Vec<&str> = graph
                    .keywords(n)
                    .iter()
                    .take(3)
                    .map(|kw| graph.vocab().resolve(kw).unwrap_or("?"))
                    .collect();
                if tags.is_empty() {
                    format!("{n}")
                } else {
                    format!("{n}[{}]", tags.join(","))
                }
            })
            .collect();
        println!("   {}", described.join(" -> "));
    }
    Ok(())
}

/// `kor batch`: generate a workload over a dataset and answer it in
/// parallel over one shared engine.
fn batch(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("batch needs a graph file")?;

    // `--canned` replays the query sets stored in a `.korbin` snapshot
    // (each with its own budget) instead of generating a workload. The
    // graph comes from the same parse, so the queries can never run
    // against a different file state than they were validated with. A
    // sharded snapshot replays through the scatter-gather router — the
    // answers are byte-identical, only the routing changes.
    let (graph, canned, sharding) = if flag(&flags, "canned").is_some() {
        let world = read_snapshot(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
        if world.query_count() == 0 {
            return Err(format!(
                "--canned: {path} holds no canned queries (generate with `kor gen` \
                 or can a workload with `kor ingest --per-set`)"
            ));
        }
        (world.graph, Some(world.query_sets), world.sharding)
    } else {
        (load(path)?, None, None)
    };

    let budget: f64 = match (flag(&flags, "budget"), &canned) {
        (Some(v), _) => v.parse().map_err(|_| "--budget: not a number")?,
        (None, Some(_)) => 0.0, // unused: canned queries carry budgets
        (None, None) => return Err("--budget is required (or pass --canned)".into()),
    };
    let keyword_counts = parse_keyword_counts(&flags, vec![2, 4, 6, 8, 10])?;
    let per_set: usize = parse_num(&flags, "per-set", 50)?;
    let threads: usize = parse_num(&flags, "threads", 0)?;
    let seed: u64 = parse_num(&flags, "seed", 42)?;
    let epsilon: f64 = parse_num(&flags, "epsilon", 0.5)?;
    let beta: f64 = parse_num(&flags, "beta", 1.2)?;
    let alpha: f64 = parse_num(&flags, "alpha", 0.5)?;
    let beam: usize = parse_num(&flags, "beam", 1)?;
    let quiet = flag(&flags, "quiet").is_some();

    let algo = match flag(&flags, "algo").unwrap_or("bucket-bound") {
        "os-scaling" => BatchAlgo::OsScaling { epsilon },
        "bucket-bound" => BatchAlgo::BucketBound { epsilon, beta },
        "greedy" => BatchAlgo::Greedy { alpha, beam },
        other => {
            return Err(format!(
                "unknown --algo {other:?} (batch supports os-scaling, bucket-bound, greedy)"
            ))
        }
    };
    let config = BatchConfig {
        workload: WorkloadConfig {
            keyword_counts,
            queries_per_set: per_set,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed,
        },
        delta: budget,
        canned,
        sharding,
        algo,
        threads,
    };

    let report = run_batch(&graph, &config);

    if !quiet {
        for o in &report.outcomes {
            let status = match (&o.error, o.objective) {
                (Some(e), _) => format!("error: {e}"),
                (None, Some(os)) => format!("OS {os:.4}"),
                (None, None) => "infeasible".to_string(),
            };
            println!(
                "q{:04} {}kw {:>10.1}us  {status}",
                o.id,
                o.keyword_count,
                o.latency.as_secs_f64() * 1e6,
            );
        }
    }
    eprintln!(
        "batch: {} queries on {} threads in {:.1} ms ({:.0} q/s), {} feasible, {} errors",
        report.outcomes.len(),
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.throughput_qps(),
        report.feasible(),
        report.errors(),
    );
    if let Some((local, fanout)) = report.shard_routing {
        eprintln!("batch: sharded routing: {local} shard-local, {fanout} fused fanouts");
    }
    let json = report.to_json();
    if let Some(out) = flag(&flags, "json-out") {
        std::fs::write(out, &json).map_err(|e| format!("--json-out {out}: {e}"))?;
        eprintln!("wrote JSON summary to {out}");
    }
    println!("{json}");
    Ok(())
}

/// `kor shard`: split a snapshot into N shards. Computes the node
/// assignment (`kor_apsp::partition`, folded to the requested count),
/// the cut-edge list, and the escape/enter boundary summary, then
/// writes a sharded snapshot: the `GRPH`/`VOCB`/`POST`/`QRYS` bytes are
/// untouched, `SHRD`/`BNDR` sections are appended. Deterministic: the
/// same input and `--shards` always produce a byte-identical output.
fn shard(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let input = positional
        .first()
        .ok_or("shard needs a dataset file (.korbin or .korg)")?;
    let shards: usize = parse_num(&flags, "shards", 2)?;
    if shards == 0 {
        return Err("--shards must be ≥ 1".into());
    }
    let out = match flag(&flags, "out") {
        Some(o) => PathBuf::from(o),
        None => {
            let p = Path::new(input);
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("dataset");
            p.with_file_name(format!("{stem}-{shards}shard.korbin"))
        }
    };
    // Same clobber guard as `ingest`: canonicalize so spelling aliases
    // cannot slip past and overwrite the input.
    let same_file = match (std::fs::canonicalize(input), std::fs::canonicalize(&out)) {
        (Ok(a), Ok(b)) => a == b,
        _ => out.as_path() == Path::new(input),
    };
    if same_file {
        return Err(format!(
            "refusing to overwrite the input ({}); pass a different --out",
            out.display()
        ));
    }
    let mut world =
        kor::data::read_world_auto(Path::new(input)).map_err(|e| format!("{input}: {e}"))?;
    let info = kor::data::compute_sharding(&world.graph, shards);
    let sizes = info.shard_sizes();
    println!(
        "sharded {} nodes into {} shards (sizes {:?}), {} cut edges",
        world.graph.node_count(),
        info.shard_count,
        sizes,
        info.cut_edges.len(),
    );
    if (info.shard_count as usize) < shards {
        eprintln!(
            "note: the partition yielded {} non-empty shards (requested {shards})",
            info.shard_count
        );
    }
    world.sharding = Some(info);
    write_snapshot(&out, &world).map_err(|e| e.to_string())?;
    println!("saved to {}", out.display());
    Ok(())
}

/// `kor mutate`: replay a mutation script (loaded from `--script` or
/// generated from seeded traffic-profile flags) against a warm engine
/// and write the mutated snapshot. `--verify` rebuilds a cold engine
/// after every phase and requires the two canned-replay answer digests
/// to match bit for bit — the offline form of the dynamic-world
/// byte-identity contract. `--emit-script` saves the script JSON so the
/// exact same incidents replay offline or over `update_edges`.
fn mutate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let input = positional
        .first()
        .ok_or("mutate needs a dataset file (.korbin or .korg)")?;
    let out = match flag(&flags, "out") {
        Some(o) => PathBuf::from(o),
        None => {
            let p = Path::new(input);
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("dataset");
            p.with_file_name(format!("{stem}-mutated.korbin"))
        }
    };
    // Same clobber guard as `ingest` and `shard`.
    let same_file = match (std::fs::canonicalize(input), std::fs::canonicalize(&out)) {
        (Ok(a), Ok(b)) => a == b,
        _ => out.as_path() == Path::new(input),
    };
    if same_file {
        return Err(format!(
            "refusing to overwrite the input ({}); pass a different --out",
            out.display()
        ));
    }
    let mut world =
        kor::data::read_world_auto(Path::new(input)).map_err(|e| format!("{input}: {e}"))?;

    let script = match flag(&flags, "script") {
        Some(path) => {
            // A script file overrides the traffic knobs; mixing the two
            // would silently ignore half the flags.
            for knob in [
                "traffic-seed",
                "phases",
                "closures",
                "slowdowns",
                "multiplier-lo",
                "multiplier-hi",
                "no-reopen",
            ] {
                if flag(&flags, knob).is_some() {
                    return Err(format!("--{knob} conflicts with --script"));
                }
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--script {path}: {e}"))?;
            kor::mutate::script_from_json(&text)?
        }
        None => {
            let base = TrafficConfig::base(parse_num(&flags, "traffic-seed", 2012)?);
            let config = TrafficConfig {
                phases: parse_num(&flags, "phases", base.phases)?,
                closures_per_phase: parse_num(&flags, "closures", base.closures_per_phase)?,
                slowdowns_per_phase: parse_num(&flags, "slowdowns", base.slowdowns_per_phase)?,
                multiplier_range: (
                    parse_num(&flags, "multiplier-lo", base.multiplier_range.0)?,
                    parse_num(&flags, "multiplier-hi", base.multiplier_range.1)?,
                ),
                reopen: flag(&flags, "no-reopen").is_none(),
                ..base
            };
            let (lo, hi) = config.multiplier_range;
            if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo) {
                return Err(format!(
                    "--multiplier-lo/--multiplier-hi must be finite, positive, \
                     and ordered (got [{lo}, {hi}])"
                ));
            }
            generate_traffic(&world.graph, &config)
        }
    };
    if let Some(path) = flag(&flags, "emit-script") {
        std::fs::write(path, kor::mutate::script_to_json(&script))
            .map_err(|e| format!("--emit-script {path}: {e}"))?;
        eprintln!("wrote mutation script to {path}");
    }

    let epsilon: f64 = parse_num(&flags, "epsilon", 0.5)?;
    let algo = match flag(&flags, "algo").unwrap_or("bucket-bound") {
        "os-scaling" => BatchAlgo::OsScaling { epsilon },
        "bucket-bound" => BatchAlgo::BucketBound {
            epsilon,
            beta: parse_num(&flags, "beta", 1.2)?,
        },
        "greedy" => BatchAlgo::Greedy {
            alpha: parse_num(&flags, "alpha", 0.5)?,
            beam: parse_num(&flags, "beam", 1)?,
        },
        other => {
            return Err(format!(
                "unknown --algo {other:?} (mutate supports os-scaling, bucket-bound, greedy)"
            ))
        }
    };
    let report = run_mutate(
        &mut world,
        &script,
        &MutateConfig {
            algo,
            verify: flag(&flags, "verify").is_some(),
        },
    )?;

    if flag(&flags, "quiet").is_none() {
        for (i, p) in report.phases.iter().enumerate() {
            let verdict = match (p.warm_digest, p.cold_digest) {
                (Some(w), Some(c)) if w == c => format!(", digest {w:016x} (warm == cold)"),
                _ => String::new(),
            };
            eprintln!(
                "phase {i}: {} mutations -> epoch {}, retained {}, evicted {}{verdict}",
                p.applied,
                p.report.epoch,
                p.report.total_retained(),
                p.report.total_evicted(),
            );
        }
    }
    eprintln!(
        "mutate: {} phases, {} mutations, retained {}, evicted {}{}",
        report.phases.len(),
        report.phases.iter().map(|p| p.applied).sum::<usize>(),
        report.total_retained(),
        report.total_evicted(),
        if report.verified {
            ", verified warm == cold"
        } else {
            ""
        },
    );
    let json = report.to_json();
    if let Some(path) = flag(&flags, "json-out") {
        std::fs::write(path, &json).map_err(|e| format!("--json-out {path}: {e}"))?;
        eprintln!("wrote JSON summary to {path}");
    }
    println!("{json}");
    write_snapshot(&out, &world).map_err(|e| e.to_string())?;
    println!("saved to {}", out.display());
    Ok(())
}

/// `kor bench`: run the warm-vs-cold repeated-target benchmark and
/// write `BENCH_kor.json`.
fn bench(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let mut cfg = if flag(&flags, "smoke").is_some() {
        BenchConfig::smoke()
    } else {
        BenchConfig::default()
    };
    cfg.nodes = parse_num(&flags, "nodes", cfg.nodes)?;
    cfg.targets = parse_num(&flags, "targets", cfg.targets)?;
    cfg.per_target = parse_num(&flags, "per-target", cfg.per_target)?;
    cfg.budget = parse_num(&flags, "budget", cfg.budget)?;
    cfg.seed = parse_num(&flags, "seed", cfg.seed)?;
    if cfg.targets == 0 || cfg.per_target == 0 {
        return Err("--targets and --per-target must be ≥ 1".into());
    }
    if let Some(out) = flag(&flags, "out") {
        cfg.out = PathBuf::from(out);
    }
    if let Some(list) = flag(&flags, "algos") {
        cfg.algos = list
            .split(',')
            .filter(|a| !a.is_empty())
            .map(|a| match a {
                "os-scaling" => Ok(BenchAlgo::OsScaling),
                "bucket-bound" => Ok(BenchAlgo::BucketBound),
                "exact" => Ok(BenchAlgo::Exact),
                "top-k-os-scaling" => Ok(BenchAlgo::TopKOsScaling(3)),
                "top-k-bucket-bound" => Ok(BenchAlgo::TopKBucketBound(3)),
                other => Err(format!("unknown bench algo {other:?}")),
            })
            .collect::<Result<_, _>>()?;
        if cfg.algos.is_empty() {
            return Err("--algos needs at least one algorithm".into());
        }
    }
    let graph = positional.first().map(|p| load(p)).transpose()?;
    let report = run_bench_to_file(graph, &cfg)?;
    let overall = report.get("overall").expect("report has overall");
    let identical = overall
        .get("all_identical")
        .and_then(kor::json::JsonValue::as_bool)
        .unwrap_or(false);
    eprintln!(
        "bench: min median speedup ×{:.2}, identical: {identical}",
        overall
            .get("min_speedup_median")
            .and_then(kor::json::JsonValue::as_f64)
            .unwrap_or(f64::NAN),
    );
    // Identity is deterministic (unlike the timing-based speedup): a
    // warm/cold divergence is a cache correctness bug and must fail the
    // run, so the CI bench-smoke step actually guards against it.
    if !identical {
        return Err(
            "warm results diverged from cold (see the report's per-algo \"identical\" flags)"
                .into(),
        );
    }
    if let Some(baseline_path) = flag(&flags, "compare") {
        let tolerance: f64 = parse_num(&flags, "tolerance", 0.6)?;
        if !tolerance.is_finite() || tolerance < 0.0 {
            return Err("--tolerance must be a finite number ≥ 0".into());
        }
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let baseline = kor::json::JsonValue::parse(&text)
            .map_err(|e| format!("parsing baseline {baseline_path}: {e:?}"))?;
        let failures = kor::bench::compare_with_baseline(&report, &baseline, tolerance);
        if failures.is_empty() {
            eprintln!("bench: no regression vs {baseline_path} (tolerance {tolerance})");
        } else {
            for f in &failures {
                eprintln!("bench regression: {f}");
            }
            return Err(format!(
                "{} regression(s) vs baseline {baseline_path}",
                failures.len()
            ));
        }
    }
    Ok(())
}

/// `kor serve`: run the TCP query service until a `shutdown` request.
fn serve(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if let Some(stray) = positional.first() {
        return Err(format!(
            "serve takes no positional arguments (saw {stray:?}); use --dataset [NAME=]FILE"
        ));
    }
    let config = ServeConfig {
        addr: flag(&flags, "addr").unwrap_or("127.0.0.1:7878").to_string(),
        threads: parse_num(&flags, "threads", 0)?,
        io: flag(&flags, "io").unwrap_or("event").parse()?,
        queue_capacity: parse_num(&flags, "queue", 0)?,
        default_deadline_ms: parse_num(&flags, "deadline-ms", 0)?,
        max_request_bytes: parse_num(&flags, "max-request-bytes", 1 << 20)?,
        journal: flag(&flags, "journal").map(PathBuf::from),
    };
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    for spec in flag_all(&flags, "dataset") {
        // `NAME=FILE` names the dataset explicitly; a bare `FILE` takes
        // its name from the file stem.
        let (name, path) = match spec.split_once('=') {
            Some((name, path)) if !name.is_empty() => (name.to_string(), path),
            _ => {
                let path = spec.strip_prefix('=').unwrap_or(spec);
                let name = Dataset::name_from_path(Path::new(path))
                    .ok_or_else(|| format!("--dataset {spec:?}: cannot derive a name"))?;
                (name, path)
            }
        };
        let recovered = server.attach_dataset(&name, Path::new(path))?;
        let dataset = server
            .registry()
            .get(&name)
            .expect("attach_dataset registered the dataset");
        let graph = dataset.engine().graph();
        eprintln!(
            "loaded dataset {name:?}: {} nodes, {} edges, {} keywords",
            graph.node_count(),
            graph.edge_count(),
            graph.vocab().len()
        );
        if let Some(info) = recovered {
            if info.batches > 0 {
                eprintln!(
                    "recovered dataset {name:?} from its journal: {} batches -> epoch {}",
                    info.batches, info.epoch
                );
            }
        }
    }
    // The e2e tests parse this line to learn the ephemeral port; keep
    // its shape stable.
    println!("kor serve: listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run();
    eprintln!("kor serve: shut down");
    Ok(())
}

/// `kor recover`: replay a mutation journal over its base world,
/// optionally verify against a never-crashed twin, optionally compact.
fn recover(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let dataset = positional
        .first()
        .ok_or("recover needs the dataset file the journal was created for")?;
    let journal_dir = flag(&flags, "journal")
        .ok_or("recover needs --journal DIR (the serve-side journal directory)")?;
    let epsilon: f64 = parse_num(&flags, "epsilon", 0.5)?;
    let algo = match flag(&flags, "algo").unwrap_or("bucket-bound") {
        "os-scaling" => BatchAlgo::OsScaling { epsilon },
        "bucket-bound" => BatchAlgo::BucketBound {
            epsilon,
            beta: parse_num(&flags, "beta", 1.2)?,
        },
        "greedy" => BatchAlgo::Greedy {
            alpha: parse_num(&flags, "alpha", 0.5)?,
            beam: parse_num(&flags, "beam", 1)?,
        },
        other => {
            return Err(format!(
                "unknown --algo {other:?} (recover supports os-scaling, bucket-bound, greedy)"
            ))
        }
    };
    let config = RecoverConfig {
        dataset: PathBuf::from(dataset),
        journal_dir: PathBuf::from(journal_dir),
        name: flag(&flags, "name").map(str::to_string),
        verify: flag(&flags, "verify").is_some(),
        compact: flag(&flags, "compact").is_some(),
        algo,
    };
    let json_out = flag(&flags, "json-out").map(Path::new);
    let report = run_recover_to_file(&config, json_out)?;
    eprintln!(
        "recover {:?}: base epoch {}, {} batches -> epoch {}{}",
        report.name,
        report.base_epoch,
        report.batches,
        report.epoch,
        if report.torn_bytes > 0 {
            format!(" ({} torn bytes ignored)", report.torn_bytes)
        } else {
            String::new()
        },
    );
    if let Some(digest) = report.verified_digest {
        eprintln!("verified: cold-recovered answers match the never-crashed twin ({digest:016x})");
    }
    if let Some(path) = &report.checkpoint {
        eprintln!("compacted into checkpoint {}", path.display());
    }
    println!("{}", report.to_json());
    Ok(())
}

/// `kor loadtest`: measure `kor serve` throughput per I/O mode against
/// a snapshot's canned queries and write `BENCH_serve.json`.
fn loadtest(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional
        .first()
        .ok_or("loadtest needs a .korbin snapshot with canned queries")?;
    let mut cfg = if flag(&flags, "smoke").is_some() {
        LoadtestConfig::smoke()
    } else {
        LoadtestConfig::default()
    };
    cfg.threads = parse_num(&flags, "threads", cfg.threads)?;
    cfg.clients = parse_num(&flags, "clients", cfg.clients)?;
    cfg.duration = std::time::Duration::from_millis(parse_num(
        &flags,
        "duration-ms",
        cfg.duration.as_millis() as u64,
    )?);
    cfg.warmup = std::time::Duration::from_millis(parse_num(
        &flags,
        "warmup-ms",
        cfg.warmup.as_millis() as u64,
    )?);
    cfg.think = std::time::Duration::from_millis(parse_num(
        &flags,
        "think-ms",
        cfg.think.as_millis() as u64,
    )?);
    if cfg.threads == 0 || cfg.clients == 0 || cfg.duration.is_zero() {
        return Err("--threads, --clients, and --duration-ms must be ≥ 1".into());
    }
    cfg.modes = match flag(&flags, "mode").unwrap_or("both") {
        "both" => vec![kor::serve::IoMode::Event, kor::serve::IoMode::Blocking],
        other => vec![other.parse()?],
    };
    if let Some(out) = flag(&flags, "out") {
        cfg.out = PathBuf::from(out);
    }
    let report = run_loadtest_to_file(Path::new(path), &cfg)?;
    for io in ["event", "blocking"] {
        if let Some(mode) = report.get("modes").and_then(|m| m.get(io)) {
            let qps = mode.get("qps").and_then(kor::json::JsonValue::as_f64);
            let p50 = mode
                .get("latency_ms")
                .and_then(|l| l.get("p50"))
                .and_then(kor::json::JsonValue::as_f64);
            eprintln!(
                "loadtest [{io}]: {:.0} qps, p50 {:.2} ms, {} overloaded, {} io errors",
                qps.unwrap_or(f64::NAN),
                p50.unwrap_or(f64::NAN),
                mode.get("overloaded")
                    .and_then(kor::json::JsonValue::as_u64)
                    .unwrap_or(0),
                mode.get("io_errors")
                    .and_then(kor::json::JsonValue::as_u64)
                    .unwrap_or(0),
            );
        }
    }
    if let Some(speedup) = report
        .get("speedup_event_over_blocking")
        .and_then(kor::json::JsonValue::as_f64)
    {
        eprintln!("loadtest: event is ×{speedup:.2} the blocking QPS");
    }
    eprintln!("wrote {}", cfg.out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_splits_positional_and_flags() {
        let (pos, flags) = parse_flags(&s(&["file.korg", "--from", "3", "--to", "7"])).unwrap();
        assert_eq!(pos, vec!["file.korg"]);
        assert_eq!(flag(&flags, "from"), Some("3"));
        assert_eq!(flag(&flags, "to"), Some("7"));
        assert_eq!(flag(&flags, "missing"), None);
    }

    #[test]
    fn parse_flags_rejects_dangling_flag() {
        assert!(parse_flags(&s(&["--from"])).is_err());
    }

    #[test]
    fn boolean_small_flag() {
        let (_, flags) = parse_flags(&s(&["flickr", "--small", "--seed", "3"])).unwrap();
        assert_eq!(flag(&flags, "small"), Some("true"));
        assert_eq!(flag(&flags, "seed"), Some("3"));
    }

    #[test]
    fn parse_num_defaults_and_errors() {
        let (_, flags) = parse_flags(&s(&["--k", "4", "--epsilon", "zzz"])).unwrap();
        assert_eq!(parse_num::<usize>(&flags, "k", 1).unwrap(), 4);
        assert_eq!(parse_num::<usize>(&flags, "absent", 9).unwrap(), 9);
        assert!(parse_num::<f64>(&flags, "epsilon", 0.5).is_err());
    }

    #[test]
    fn unknown_subcommand_is_error_listing_alternatives() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        for sub in [
            "generate", "gen", "ingest", "stats", "index", "query", "batch", "shard", "mutate",
            "bench", "serve", "loadtest", "recover",
        ] {
            assert!(err.contains(sub), "error must mention {sub}: {err}");
        }
    }

    #[test]
    fn help_enumerates_every_subcommand() {
        assert!(run(&s(&["help"])).is_ok());
        for sub in [
            "kor generate",
            "kor gen ",
            "kor ingest",
            "kor stats",
            "kor index",
            "kor query",
            "kor batch",
            "kor shard",
            "kor mutate",
            "kor bench",
            "kor serve",
            "kor loadtest",
            "kor recover",
            "kor help",
        ] {
            assert!(usage().contains(sub), "usage must mention {sub:?}");
        }
        // The seed contract is part of the CLI contract.
        assert!(usage().contains("byte-identical"));
    }

    #[test]
    fn serve_rejects_positional_args_and_bad_datasets() {
        assert!(serve(&s(&["stray.korg"])).is_err());
        assert!(serve(&s(&[
            "--addr",
            "127.0.0.1:0",
            "--dataset",
            "/nonexistent/file.korg"
        ]))
        .is_err());
    }

    #[test]
    fn flag_all_collects_repeats_in_order() {
        let (_, flags) =
            parse_flags(&s(&["--dataset", "a=1.korg", "--dataset", "b=2.korg"])).unwrap();
        assert_eq!(flag_all(&flags, "dataset"), vec!["a=1.korg", "b=2.korg"]);
        assert!(flag_all(&flags, "absent").is_empty());
    }

    #[test]
    fn end_to_end_generate_stats_index_query() {
        let dir = std::env::temp_dir().join("kor-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("cli.korg");
        let graph_str = graph_path.to_str().unwrap().to_string();
        run(&s(&[
            "generate", "road", "--nodes", "200", "--out", &graph_str, "--seed", "5",
        ]))
        .unwrap();
        run(&s(&["stats", &graph_str])).unwrap();
        let idx_str = dir.join("cli.idx").to_str().unwrap().to_string();
        run(&s(&["index", &graph_str, "--out", &idx_str])).unwrap();

        // Query with a keyword that certainly exists: read it back from
        // the saved graph.
        let graph = load(&graph_str).unwrap();
        let kw = graph
            .vocab()
            .iter()
            .find(|(id, _)| graph.nodes().any(|n| graph.node_has_keyword(n, *id)))
            .map(|(_, t)| t.to_string())
            .unwrap();
        run(&s(&[
            "query",
            &graph_str,
            "--from",
            "0",
            "--to",
            "100",
            "--keywords",
            &kw,
            "--budget",
            "1000",
            "--algo",
            "bucket-bound",
            "--k",
            "2",
        ]))
        .unwrap();
        run(&s(&[
            "query",
            &graph_str,
            "--from",
            "0",
            "--to",
            "100",
            "--keywords",
            &kw,
            "--budget",
            "1000",
            "--algo",
            "greedy",
            "--beam",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn gen_ingest_batch_round_trip() {
        let dir = std::env::temp_dir().join(format!("kor-cli-gen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("world.korbin");
        let bin_str = bin.to_str().unwrap().to_string();
        run(&s(&[
            "gen",
            "--topology",
            "grid",
            "--width",
            "5",
            "--height",
            "4",
            "--seed",
            "9",
            "--out",
            &bin_str,
        ]))
        .unwrap();
        // The snapshot loads everywhere a graph file is accepted.
        run(&s(&["stats", &bin_str])).unwrap();
        let world = read_snapshot(&bin).unwrap();
        assert_eq!(world.graph.node_count(), 20);
        assert!(world.query_count() > 0);

        // korbin -> korg -> korbin; the text leg drops queries, the
        // second leg cans a fresh workload.
        let text = dir.join("world.korg");
        let text_str = text.to_str().unwrap().to_string();
        run(&s(&["ingest", &bin_str, "--out", &text_str])).unwrap();
        let back = dir.join("back.korbin");
        let back_str = back.to_str().unwrap().to_string();
        run(&s(&[
            "ingest",
            &text_str,
            "--out",
            &back_str,
            "--per-set",
            "3",
            "--keywords",
            "2",
            "--budget",
            "12",
        ]))
        .unwrap();
        let back_world = read_snapshot(&back).unwrap();
        assert_eq!(back_world.graph.node_count(), 20);
        assert_eq!(back_world.query_count(), 3);

        // Canned replay through the batch front end.
        run(&s(&["batch", &bin_str, "--canned", "--quiet"])).unwrap();
        // --canned on a query-less snapshot is a clear error.
        let empty = dir.join("empty.korbin");
        run(&s(&[
            "gen",
            "--width",
            "3",
            "--height",
            "3",
            "--per-set",
            "0",
            "--out",
            empty.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run(&s(&[
            "batch",
            empty.to_str().unwrap(),
            "--canned",
            "--quiet",
        ]))
        .unwrap_err();
        assert!(err.contains("no canned queries"), "{err}");
        // Refuses to clobber its input.
        assert!(run(&s(&["ingest", &bin_str, "--out", &bin_str])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_writes_a_routable_snapshot() {
        let dir = std::env::temp_dir().join(format!("kor-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("world.korbin");
        let bin_str = bin.to_str().unwrap().to_string();
        run(&s(&[
            "gen",
            "--topology",
            "grid",
            "--width",
            "6",
            "--height",
            "5",
            "--seed",
            "3",
            "--out",
            &bin_str,
        ]))
        .unwrap();
        let sharded = dir.join("world-2.korbin");
        let sharded_str = sharded.to_str().unwrap().to_string();
        run(&s(&[
            "shard",
            &bin_str,
            "--shards",
            "2",
            "--out",
            &sharded_str,
        ]))
        .unwrap();
        let world = read_snapshot(&sharded).unwrap();
        let info = world.sharding.expect("sharded snapshot carries layout");
        assert_eq!(info.shard_count, 2);
        // Sharding is deterministic: re-sharding produces identical bytes.
        let again = dir.join("again.korbin");
        run(&s(&[
            "shard",
            &bin_str,
            "--shards",
            "2",
            "--out",
            again.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&sharded).unwrap(),
            std::fs::read(&again).unwrap()
        );
        // The sharded snapshot replays through the batch front end and
        // its result digest matches the unsharded replay exactly — the
        // same check CI's shard smoke step performs from the shell.
        let digest_of = |input: &str, out: &std::path::Path| {
            run(&s(&[
                "batch",
                input,
                "--canned",
                "--quiet",
                "--json-out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            let summary = kor::json::JsonValue::parse(&std::fs::read_to_string(out).unwrap())
                .expect("batch summary is valid JSON");
            summary
                .get("result_digest")
                .and_then(kor::json::JsonValue::as_str)
                .expect("batch summary carries a result digest")
                .to_string()
        };
        let plain = digest_of(&bin_str, &dir.join("plain.json"));
        let routed = digest_of(&sharded_str, &dir.join("routed.json"));
        assert_eq!(plain, routed, "sharded replay drifted from unsharded");
        let routed_summary =
            kor::json::JsonValue::parse(&std::fs::read_to_string(dir.join("routed.json")).unwrap())
                .unwrap();
        let shards_section = routed_summary
            .get("shards")
            .expect("sharded batch summary reports routing counts");
        let local = shards_section
            .get("local")
            .and_then(kor::json::JsonValue::as_u64)
            .unwrap();
        let fanout = shards_section
            .get("fanout")
            .and_then(kor::json::JsonValue::as_u64)
            .unwrap();
        assert!(local + fanout > 0, "no canned queries were routed");
        // Refuses --shards 0 and clobbering the input.
        assert!(run(&s(&["shard", &bin_str, "--shards", "0"])).is_err());
        assert!(run(&s(&["shard", &bin_str, "--out", &bin_str])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutate_verifies_emits_and_replays_scripts() {
        let dir = std::env::temp_dir().join(format!("kor-cli-mutate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("world.korbin");
        let bin_str = bin.to_str().unwrap().to_string();
        run(&s(&[
            "gen",
            "--topology",
            "grid",
            "--width",
            "6",
            "--height",
            "5",
            "--seed",
            "3",
            "--out",
            &bin_str,
        ]))
        .unwrap();

        // Generate traffic, verify warm == cold, emit the script.
        let mutated = dir.join("mutated.korbin");
        let script = dir.join("script.json");
        run(&s(&[
            "mutate",
            &bin_str,
            "--traffic-seed",
            "7",
            "--verify",
            "--quiet",
            "--out",
            mutated.to_str().unwrap(),
            "--emit-script",
            script.to_str().unwrap(),
            "--json-out",
            dir.join("summary.json").to_str().unwrap(),
        ]))
        .unwrap();
        let world = read_snapshot(&mutated).unwrap();
        assert!(world.query_count() > 0, "canned queries survive mutation");
        let summary = kor::json::JsonValue::parse(
            &std::fs::read_to_string(dir.join("summary.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(
            summary
                .get("verified")
                .and_then(kor::json::JsonValue::as_bool),
            Some(true)
        );

        // Replaying the emitted script byte-reproduces the snapshot.
        let again = dir.join("again.korbin");
        run(&s(&[
            "mutate",
            &bin_str,
            "--script",
            script.to_str().unwrap(),
            "--quiet",
            "--out",
            again.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read(&mutated).unwrap(),
            std::fs::read(&again).unwrap(),
            "script replay must byte-reproduce the mutated snapshot"
        );

        // Traffic knobs conflict with --script; clobbering is refused.
        assert!(run(&s(&[
            "mutate",
            &bin_str,
            "--script",
            script.to_str().unwrap(),
            "--phases",
            "2",
        ]))
        .is_err());
        assert!(run(&s(&["mutate", &bin_str, "--out", &bin_str])).is_err());
        // Bad multiplier ranges fail before any engine work.
        assert!(run(&s(&[
            "mutate",
            &bin_str,
            "--multiplier-lo",
            "2.0",
            "--multiplier-hi",
            "1.0",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_requires_endpoints_and_budget() {
        let dir = std::env::temp_dir().join("kor-cli-tests2");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("need.korg");
        let graph_str = graph_path.to_str().unwrap().to_string();
        run(&s(&[
            "generate", "road", "--nodes", "50", "--out", &graph_str,
        ]))
        .unwrap();
        assert!(run(&s(&["query", &graph_str, "--budget", "5"])).is_err());
        assert!(run(&s(&["query", &graph_str, "--from", "0", "--to", "3"])).is_err());
    }
}
