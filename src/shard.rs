//! The scatter-gather shard router.
//!
//! A sharded dataset (see [`kor_data::shard`]) runs one warm
//! [`KorEngine`] per shard — each over the shard's subgraph (full node
//! space, intra-shard edges only) — plus the *fused* engine over the
//! complete graph that the registry already holds. The router in front
//! of them decides, per query, which engine answers:
//!
//! * **Local** — source and target share a shard and the boundary
//!   summary proves confinement (`escape[s] + enter[t] > Δ`: any route
//!   leaving the shard busts the budget). The owning shard's engine
//!   answers alone; for scaled algorithms its search is anchored to the
//!   fused graph's edge-weight extrema ([`ScaleAnchor`]) so the scaling
//!   factor `θ` — and with it every label key — matches what the fused
//!   engine would compute. The shard-local answer is therefore the
//!   *same* answer, found while touching one shard's edges.
//! * **Fanout** — the query may cross shards (different owners, or the
//!   budget admits an excursion). Per-shard label searches cannot see
//!   cut edges, so no merge of their top-k lists could contain a
//!   crossing route; the only gather that preserves exactness is the
//!   search that sees every shard's edges *and* the cut edges at once —
//!   the fused engine. The router accounts the fanout and hands the
//!   query there.
//!
//! Either way the response is byte-identical to the single-engine
//! answer — enforced across all generated worlds by
//! `tests/shard_oracle.rs`.
//!
//! Shards can be *poisoned* (fault injection, or a real backing store
//! going away): queries owned by a poisoned shard fail with a
//! structured `shard_unavailable` error while every other shard keeps
//! answering; `revive` undoes it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use kor_core::{BucketBoundParams, KorEngine, OsScalingParams, ScaleAnchor};
use kor_data::shard::ShardingInfo;
use kor_data::shard_subgraph;
use kor_graph::{Graph, NodeId};

/// How the router decided to answer a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlan {
    /// Confined to one shard: answer with that shard's engine (scaled
    /// searches must be anchored via [`ShardRouter::anchored_os`] /
    /// [`ShardRouter::anchored_bucket`]).
    Local(u32),
    /// May cross shards: answer with the fused engine.
    Fanout,
}

/// A query touched a poisoned shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardUnavailable {
    /// The poisoned shard that owns the query's source or target.
    pub shard: u32,
}

impl std::fmt::Display for ShardUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} is unavailable", self.shard)
    }
}

impl std::error::Error for ShardUnavailable {}

/// Point-in-time counters of one shard, for `stats` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCounters {
    /// Nodes owned by the shard.
    pub nodes: u64,
    /// Queries owned by this shard (its engine ran, or it co-owned a
    /// fanout / was the rejected owner).
    pub queries: u64,
    /// Queries this shard answered alone (confined local searches).
    pub local_hits: u64,
    /// Whether the shard is currently poisoned.
    pub poisoned: bool,
}

struct Shard {
    engine: KorEngine<Arc<Graph>>,
    nodes: u64,
    poisoned: AtomicBool,
    queries: AtomicU64,
    local_hits: AtomicU64,
}

/// One warm engine per shard plus the routing/accounting state in front
/// of them. The fused engine stays with the caller (the registry or the
/// batch runner) — the router only decides and accounts.
pub struct ShardRouter {
    info: ShardingInfo,
    anchor: ScaleAnchor,
    shards: Vec<Shard>,
    fused_only: bool,
    fanouts: AtomicU64,
    rejected: AtomicU64,
}

impl ShardRouter {
    /// Builds the per-shard engines for `info` over `graph` (the fused
    /// dataset the anchor extrema are pinned from). `info` must describe
    /// `graph` — snapshot loading validates that; computed layouts are
    /// correct by construction.
    pub fn new(graph: &Graph, info: ShardingInfo) -> Self {
        Self::new_with_mode(graph, info, false)
    }

    /// [`Self::new`] with an explicit routing mode. `fused_only` is the
    /// degraded mode a mutated sharded dataset falls into when a batch
    /// changed a *cut* edge: the re-derived escape/enter boundary
    /// tables describe the new cut set, but confinement proofs built on
    /// a shifting boundary are not worth trusting mid-traffic, so the
    /// router plans every query as [`ShardPlan::Fanout`] (the fused
    /// engine — still byte-identical answers, no shard-local savings)
    /// until the dataset is re-sharded offline.
    pub fn new_with_mode(graph: &Graph, info: ShardingInfo, fused_only: bool) -> Self {
        let sizes = info.shard_sizes();
        let shards = (0..info.shard_count)
            .map(|s| Shard {
                engine: KorEngine::new(Arc::new(shard_subgraph(graph, &info.assignment, s))),
                nodes: sizes[s as usize] as u64,
                poisoned: AtomicBool::new(false),
                queries: AtomicU64::new(0),
                local_hits: AtomicU64::new(0),
            })
            .collect();
        Self {
            anchor: ScaleAnchor::of(graph),
            info,
            shards,
            fused_only,
            fanouts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Whether the router is in the degraded fused-only mode (every
    /// query fans out; see [`Self::new_with_mode`]).
    pub fn fused_only(&self) -> bool {
        self.fused_only
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.info.shard_count
    }

    /// The shard layout the router routes by.
    pub fn info(&self) -> &ShardingInfo {
        &self.info
    }

    /// The fused graph's extrema every anchored local search pins.
    pub fn anchor(&self) -> ScaleAnchor {
        self.anchor
    }

    /// Routes one query and updates the per-shard counters.
    ///
    /// `local_capable` says whether the caller can answer this query
    /// shard-locally (all label-search algorithms can; the greedy
    /// heuristic cannot — its pair-cost trees consult paths that may
    /// cross shards even when the final route would not, so it always
    /// fans out to the fused engine).
    ///
    /// Fails with [`ShardUnavailable`] when the shard owning the source
    /// or the target is poisoned; other shards' queries are unaffected.
    pub fn plan(
        &self,
        source: NodeId,
        target: NodeId,
        budget: f64,
        local_capable: bool,
    ) -> Result<ShardPlan, ShardUnavailable> {
        let s = self.info.shard_of(source);
        let t = self.info.shard_of(target);
        for owner in [s, t] {
            if self.shards[owner as usize].poisoned.load(Ordering::Acquire) {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ShardUnavailable { shard: owner });
            }
        }
        self.shards[s as usize]
            .queries
            .fetch_add(1, Ordering::Relaxed);
        if t != s {
            self.shards[t as usize]
                .queries
                .fetch_add(1, Ordering::Relaxed);
        }
        if local_capable && !self.fused_only && self.info.confined(source, target, budget) {
            self.shards[s as usize]
                .local_hits
                .fetch_add(1, Ordering::Relaxed);
            Ok(ShardPlan::Local(s))
        } else {
            self.fanouts.fetch_add(1, Ordering::Relaxed);
            Ok(ShardPlan::Fanout)
        }
    }

    /// The warm engine of `shard`.
    pub fn engine(&self, shard: u32) -> &KorEngine<Arc<Graph>> {
        &self.shards[shard as usize].engine
    }

    /// `params` with the scaling extrema anchored to the fused graph —
    /// what a [`ShardPlan::Local`] OSScaling/top-k search must run with.
    pub fn anchored_os(&self, params: &OsScalingParams) -> OsScalingParams {
        OsScalingParams {
            anchor: Some(self.anchor),
            ..params.clone()
        }
    }

    /// [`Self::anchored_os`] for `BucketBound` searches.
    pub fn anchored_bucket(&self, params: &BucketBoundParams) -> BucketBoundParams {
        BucketBoundParams {
            anchor: Some(self.anchor),
            ..params.clone()
        }
    }

    /// Marks `shard` unavailable; returns `false` if out of range.
    pub fn poison(&self, shard: u32) -> bool {
        match self.shards.get(shard as usize) {
            Some(s) => {
                s.poisoned.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Clears a poisoned mark; returns `false` if out of range.
    pub fn revive(&self, shard: u32) -> bool {
        match self.shards.get(shard as usize) {
            Some(s) => {
                s.poisoned.store(false, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Whether `shard` is currently poisoned.
    pub fn is_poisoned(&self, shard: u32) -> bool {
        self.shards
            .get(shard as usize)
            .is_some_and(|s| s.poisoned.load(Ordering::Acquire))
    }

    /// Per-shard counters, in shard-id order.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| ShardCounters {
                nodes: s.nodes,
                queries: s.queries.load(Ordering::Relaxed),
                local_hits: s.local_hits.load(Ordering::Relaxed),
                poisoned: s.poisoned.load(Ordering::Acquire),
            })
            .collect()
    }

    /// Queries answered by the fused engine (cross-shard or non-local
    /// algorithms).
    pub fn fanouts(&self) -> u64 {
        self.fanouts.load(Ordering::Relaxed)
    }

    /// Queries rejected because an owning shard was poisoned.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_core::KorQuery;
    use kor_data::{compute_sharding, generate_world, GenConfig};

    fn setup() -> (Graph, ShardRouter) {
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        let info = compute_sharding(&world.graph, 2);
        let router = ShardRouter::new(&world.graph, info);
        (world.graph, router)
    }

    fn pairs(graph: &Graph, router: &ShardRouter) -> ((NodeId, NodeId), (NodeId, NodeId)) {
        let info = router.info();
        let (mut same, mut cross) = (None, None);
        for a in graph.nodes() {
            for b in graph.nodes() {
                if a == b {
                    continue;
                }
                if info.shard_of(a) == info.shard_of(b) {
                    same.get_or_insert((a, b));
                } else {
                    cross.get_or_insert((a, b));
                }
            }
        }
        (same.unwrap(), cross.unwrap())
    }

    #[test]
    fn confined_queries_go_local_and_are_counted() {
        let (graph, router) = setup();
        let ((s, t), (cs, ct)) = pairs(&graph, &router);
        // Budget 0: cheaper than any excursion — confined.
        let plan = router.plan(s, t, 0.0, true).unwrap();
        let owner = router.info().shard_of(s);
        assert_eq!(plan, ShardPlan::Local(owner));
        // Cross-shard always fans out.
        assert_eq!(router.plan(cs, ct, 0.0, true).unwrap(), ShardPlan::Fanout);
        // Local-incapable algorithms fan out even when confined.
        assert_eq!(router.plan(s, t, 0.0, false).unwrap(), ShardPlan::Fanout);
        let counters = router.shard_counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[owner as usize].local_hits, 1);
        assert_eq!(router.fanouts(), 2);
        let total: u64 = counters.iter().map(|c| c.queries).sum();
        // 2 same-shard queries count once each + 1 cross-shard counts twice.
        assert_eq!(total, 4);
    }

    #[test]
    fn local_answer_matches_fused_engine() {
        let (graph, router) = setup();
        let ((s, t), _) = pairs(&graph, &router);
        let q = KorQuery::new(&graph, s, t, vec![], 0.0).unwrap();
        let ShardPlan::Local(shard) = router.plan(s, t, 0.0, true).unwrap() else {
            panic!("budget 0 must be confined");
        };
        let fused = KorEngine::new(&graph);
        let local = router
            .engine(shard)
            .exact(&q)
            .unwrap()
            .route
            .map(|r| (r.route, r.objective.to_bits(), r.budget.to_bits()));
        let global = fused
            .exact(&q)
            .unwrap()
            .route
            .map(|r| (r.route, r.objective.to_bits(), r.budget.to_bits()));
        assert_eq!(local, global);
    }

    #[test]
    fn poisoned_shard_rejects_only_its_owners() {
        let (graph, router) = setup();
        let ((s, t), (cs, ct)) = pairs(&graph, &router);
        let owner = router.info().shard_of(s);
        let other = 1 - owner;
        assert!(router.poison(owner));
        assert!(router.is_poisoned(owner));
        let err = router.plan(s, t, 0.0, true).unwrap_err();
        assert_eq!(err.shard, owner);
        // A cross-shard query touches the poisoned owner too.
        assert!(router.plan(cs, ct, 0.0, true).is_err());
        // A query wholly owned by the healthy shard keeps answering.
        let healthy: Vec<NodeId> = graph
            .nodes()
            .filter(|&v| router.info().shard_of(v) == other)
            .collect();
        assert!(router.plan(healthy[0], healthy[1], 0.0, true).is_ok());
        assert_eq!(router.rejected(), 2);
        assert!(router.revive(owner));
        assert!(router.plan(s, t, 0.0, true).is_ok());
        // Out-of-range ids are refused, not panicking.
        assert!(!router.poison(99));
        assert!(!router.revive(99));
        assert!(!router.is_poisoned(99));
    }

    #[test]
    fn fused_only_mode_always_fans_out() {
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        let info = compute_sharding(&world.graph, 2);
        let router = ShardRouter::new_with_mode(&world.graph, info, true);
        assert!(router.fused_only());
        let ((s, t), _) = pairs(&world.graph, &router);
        // Confined by the boundary tables, but the degraded mode
        // refuses the local plan anyway.
        assert_eq!(router.plan(s, t, 0.0, true).unwrap(), ShardPlan::Fanout);
        assert_eq!(router.fanouts(), 1);
        let counters = router.shard_counters();
        assert_eq!(counters.iter().map(|c| c.local_hits).sum::<u64>(), 0);
        // The default constructor stays in normal mode.
        let normal = setup().1;
        assert!(!normal.fused_only());
    }

    #[test]
    fn anchored_params_pin_the_fused_extrema() {
        let (graph, router) = setup();
        let os = router.anchored_os(&OsScalingParams::default());
        let bb = router.anchored_bucket(&BucketBoundParams::default());
        assert_eq!(os.anchor.unwrap(), ScaleAnchor::of(&graph));
        assert_eq!(bb.anchor.unwrap(), ScaleAnchor::of(&graph));
        // The shard subgraph's own extrema generally differ — that is
        // exactly why the anchor exists.
        assert_eq!(router.anchor(), ScaleAnchor::of(&graph));
    }
}
