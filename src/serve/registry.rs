//! The engine registry: named datasets, each with one warm engine.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use kor_core::{KorEngine, MutationReport};
use kor_data::sharding_from_assignment;
use kor_data::Snapshot;
use kor_graph::{EdgeMutation, Graph, MutationError};

use crate::shard::ShardRouter;

/// A loaded dataset: the graph plus one warm [`KorEngine`] (inverted
/// index and shared forward-tree cache) reused by every request that
/// names this dataset — and, when the snapshot carried `SHRD`/`BNDR`
/// sections, a [`ShardRouter`] with one warm engine per shard in front
/// of it.
///
/// The engine holds the graph behind an `Arc`, so a `Dataset` owns its
/// data outright and an `Arc<Dataset>` handed to a worker keeps serving
/// even if the registry entry is replaced mid-request.
pub struct Dataset {
    name: String,
    engine: KorEngine<Arc<Graph>>,
    router: Option<ShardRouter>,
    queries_served: AtomicU64,
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("name", &self.name)
            .field("nodes", &self.engine.graph().node_count())
            .field(
                "shards",
                &self.router.as_ref().map_or(0, |r| r.shard_count()),
            )
            .field("queries_served", &self.queries_served())
            .finish_non_exhaustive()
    }
}

impl Dataset {
    /// Loads a graph file — text `.korg` or binary `.korbin` snapshot,
    /// sniffed by content — and builds the engine. A snapshot with
    /// `SHRD`/`BNDR` sections comes up sharded: the scatter-gather
    /// router and its per-shard engines are built here, warm before the
    /// first query.
    pub fn load(name: &str, path: &Path) -> Result<Dataset, String> {
        let snapshot =
            kor_data::read_world_auto(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(Dataset::from_snapshot(name, snapshot))
    }

    /// Wraps an in-memory snapshot, building the shard router when the
    /// snapshot carries a shard layout.
    pub fn from_snapshot(name: &str, snapshot: Snapshot) -> Dataset {
        let router = snapshot
            .sharding
            .as_ref()
            .map(|info| ShardRouter::new(&snapshot.graph, info.clone()));
        Dataset {
            name: name.to_string(),
            engine: KorEngine::new(Arc::new(snapshot.graph)),
            router,
            queries_served: AtomicU64::new(0),
        }
    }

    /// The default registry name for a graph file: its file stem
    /// (`/data/city.korg` → `city`). Shared by the CLI `--dataset` flag
    /// and the `load_dataset` method so naming can never drift.
    pub fn name_from_path(path: &Path) -> Option<String> {
        path.file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
    }

    /// Wraps a graph recovered by replaying a mutation journal over a
    /// base snapshot — the crash-recovery twin of [`Dataset::load`]
    /// followed by every acknowledged `update_edges` batch.
    ///
    /// `sharding` is the *base* snapshot's layout, when it had one; the
    /// boundary tables are re-derived from its node assignment on the
    /// recovered graph, exactly as [`Dataset::with_mutations`] would
    /// have per batch. `fused_only` must be true when any replayed
    /// batch touched a cut edge of that assignment — degradation is
    /// sticky live, so recovery must reproduce it.
    pub fn from_recovered(
        name: &str,
        graph: Graph,
        sharding: Option<kor_data::ShardingInfo>,
        fused_only: bool,
    ) -> Dataset {
        let router = sharding.map(|info| {
            let rederived = sharding_from_assignment(&graph, info.assignment);
            ShardRouter::new_with_mode(&graph, rederived, fused_only)
        });
        Dataset {
            name: name.to_string(),
            engine: KorEngine::new(Arc::new(graph)),
            router,
            queries_served: AtomicU64::new(0),
        }
    }

    /// Wraps an already-built graph (tests, embedded use). Unsharded.
    pub fn from_graph(name: &str, graph: Graph) -> Dataset {
        Dataset {
            name: name.to_string(),
            engine: KorEngine::new(Arc::new(graph)),
            router: None,
            queries_served: AtomicU64::new(0),
        }
    }

    /// The dataset's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The warm engine for this dataset — the *fused* engine over the
    /// whole graph. Sharded datasets still need it: it is the gather
    /// side of the router, answering every cross-shard query.
    pub fn engine(&self) -> &KorEngine<Arc<Graph>> {
        &self.engine
    }

    /// The shard router, when this dataset was loaded from a sharded
    /// snapshot.
    pub fn router(&self) -> Option<&ShardRouter> {
        self.router.as_ref()
    }

    /// Records one answered query (any outcome).
    pub fn note_query(&self) {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries answered against this dataset since it was loaded.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::Relaxed)
    }

    /// Applies a mutation batch, producing the replacement `Dataset`
    /// (same name, carried query counter) plus the invalidation report.
    /// `self` is untouched — in-flight queries drain on the old value
    /// while the caller swaps the new one into the registry, so no
    /// request ever observes a torn graph.
    ///
    /// The warm engine carries every cache entry whose invalidation
    /// stamp avoids the changed edges. A sharded dataset re-derives its
    /// escape/enter boundary tables from the old node assignment on the
    /// mutated graph; if the batch changed a *cut* edge (or the router
    /// was already degraded), the new router runs fused-only — every
    /// query fans out to the fused engine until a re-shard.
    pub fn with_mutations(
        &self,
        mutations: &[EdgeMutation],
    ) -> Result<(Dataset, MutationReport), MutationError> {
        let (engine, report) = self.engine.apply_edge_mutations(mutations)?;
        let router = match &self.router {
            Some(old) => {
                let assignment = old.info().assignment.clone();
                let crosses_cut = mutations
                    .iter()
                    .any(|m| assignment[m.from.index()] != assignment[m.to.index()]);
                let info = sharding_from_assignment(engine.graph(), assignment);
                Some(ShardRouter::new_with_mode(
                    engine.graph(),
                    info,
                    crosses_cut || old.fused_only(),
                ))
            }
            None => None,
        };
        Ok((
            Dataset {
                name: self.name.clone(),
                engine,
                router,
                queries_served: AtomicU64::new(self.queries_served()),
            },
            report,
        ))
    }
}

/// Why [`Registry::resolve`] could not produce a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    /// No dataset with the requested name is loaded.
    Unknown(String),
    /// The request named no dataset and the registry holds zero or
    /// several, so there is no unambiguous default.
    NoDefault(usize),
}

/// Named warm engines behind an `RwLock`: reads (every query) never
/// block each other; writes happen only on `load_dataset`.
#[derive(Default)]
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<Dataset>>>,
    /// Serializes `update_edges` batches. Mutation builds the new
    /// dataset *outside* the `datasets` lock (queries keep flowing),
    /// but two concurrent batches reading the same base would each
    /// rebuild from it and the last insert would silently drop the
    /// other's changes — holding this for resolve→rebuild→insert makes
    /// batches apply strictly in sequence instead.
    mutation: Mutex<()>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of loaded datasets.
    pub fn len(&self) -> usize {
        self.datasets.read().unwrap().len()
    }

    /// Whether no dataset is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts (or replaces) a dataset under its name; returns whether
    /// an earlier dataset was replaced. In-flight queries against a
    /// replaced dataset finish on the engine they already hold.
    pub fn insert(&self, dataset: Dataset) -> bool {
        self.datasets
            .write()
            .unwrap()
            .insert(dataset.name.clone(), Arc::new(dataset))
            .is_some()
    }

    /// The dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets.read().unwrap().get(name).cloned()
    }

    /// Resolves an optional request name: `Some(name)` looks the name
    /// up; `None` succeeds only when exactly one dataset is loaded (the
    /// unambiguous default).
    pub fn resolve(&self, name: Option<&str>) -> Result<Arc<Dataset>, ResolveError> {
        let guard = self.datasets.read().unwrap();
        match name {
            Some(n) => guard
                .get(n)
                .cloned()
                .ok_or_else(|| ResolveError::Unknown(n.to_string())),
            None if guard.len() == 1 => Ok(guard.values().next().cloned().expect("len 1")),
            None => Err(ResolveError::NoDefault(guard.len())),
        }
    }

    /// Takes the registry-wide mutation lock; hold the guard across
    /// resolve → [`Dataset::with_mutations`] → [`Registry::insert`] so
    /// concurrent mutation batches serialize instead of losing updates.
    pub fn mutation_guard(&self) -> MutexGuard<'_, ()> {
        self.mutation.lock().unwrap()
    }

    /// All loaded datasets, sorted by name (stable stats output).
    pub fn all(&self) -> Vec<Arc<Dataset>> {
        let mut v: Vec<Arc<Dataset>> = self.datasets.read().unwrap().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::figure1;

    #[test]
    fn resolve_default_needs_exactly_one() {
        let r = Registry::new();
        assert!(matches!(r.resolve(None), Err(ResolveError::NoDefault(0))));
        r.insert(Dataset::from_graph("a", figure1()));
        assert_eq!(r.resolve(None).unwrap().name(), "a");
        r.insert(Dataset::from_graph("b", figure1()));
        assert!(matches!(r.resolve(None), Err(ResolveError::NoDefault(2))));
        assert_eq!(r.resolve(Some("b")).unwrap().name(), "b");
        assert!(matches!(r.resolve(Some("zzz")), Err(ResolveError::Unknown(ref n)) if n == "zzz"));
    }

    #[test]
    fn insert_reports_replacement_and_keeps_old_arcs_alive() {
        let r = Registry::new();
        assert!(!r.insert(Dataset::from_graph("a", figure1())));
        let old = r.get("a").unwrap();
        old.note_query();
        assert!(r.insert(Dataset::from_graph("a", figure1())));
        // The replaced dataset is still usable through its Arc…
        assert_eq!(old.queries_served(), 1);
        // …while lookups see the fresh one.
        assert_eq!(r.get("a").unwrap().queries_served(), 0);
    }

    #[test]
    fn load_accepts_binary_snapshots() {
        let dir = std::env::temp_dir().join(format!("kor-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.korbin");
        kor_data::write_snapshot(&path, &kor_data::Snapshot::graph_only(figure1())).unwrap();
        let d = Dataset::load("fig1", &path).unwrap();
        assert_eq!(d.engine().graph().node_count(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        let err = Dataset::load("x", Path::new("/nonexistent/graph.korg")).unwrap_err();
        assert!(err.contains("graph.korg"));
    }

    #[test]
    fn with_mutations_replaces_dataset_without_touching_the_old() {
        let r = Registry::new();
        r.insert(Dataset::from_graph("a", figure1()));
        let old = r.get("a").unwrap();
        old.note_query();
        let batch = [EdgeMutation::scale(
            kor_graph::NodeId(4),
            kor_graph::NodeId(7),
            1.0,
            2.0,
        )];
        let _guard = r.mutation_guard();
        let (updated, report) = old.with_mutations(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(updated.name(), "a");
        assert_eq!(updated.queries_served(), 1, "query counter is carried");
        assert!(updated.router().is_none());
        r.insert(updated);
        assert_eq!(r.get("a").unwrap().engine().graph().epoch(), 1);
        // The old Arc still answers on the unmutated graph.
        assert_eq!(old.engine().graph().epoch(), 0);
    }

    #[test]
    fn sharded_mutation_rederives_boundary_or_degrades_to_fused_only() {
        let world = kor_data::generate_world(&kor_data::GenConfig::grid(6, 5, 3));
        let info = kor_data::compute_sharding(&world.graph, 2);
        let assignment = info.assignment.clone();
        let mut snapshot = Snapshot::graph_only(world.graph.clone());
        snapshot.sharding = Some(info);
        let d = Dataset::from_snapshot("w", snapshot);

        // Find one intra-shard and one cross-shard edge.
        let (mut intra, mut cut) = (None, None);
        for v in world.graph.nodes() {
            for e in world.graph.out_edges(v) {
                if assignment[v.index()] == assignment[e.node.index()] {
                    intra.get_or_insert((v, e.node));
                } else {
                    cut.get_or_insert((v, e.node));
                }
            }
        }
        let (iv, iw) = intra.unwrap();
        let (cv, cw) = cut.unwrap();

        // Intra-shard change: boundary re-derived, router stays sharded.
        let (updated, _) = d
            .with_mutations(&[EdgeMutation::scale(iv, iw, 1.0, 2.0)])
            .unwrap();
        let router = updated.router().expect("still sharded");
        assert!(!router.fused_only());
        assert_eq!(router.info().assignment, assignment);

        // Cut-edge change: degraded to fused-only routing, stickily.
        let (degraded, _) = updated
            .with_mutations(&[EdgeMutation::scale(cv, cw, 1.0, 2.0)])
            .unwrap();
        assert!(degraded.router().unwrap().fused_only());
        let (still, _) = degraded
            .with_mutations(&[EdgeMutation::scale(iv, iw, 1.0, 2.0)])
            .unwrap();
        assert!(
            still.router().unwrap().fused_only(),
            "fused-only survives later intra-shard batches"
        );
    }

    #[test]
    fn all_is_sorted() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            r.insert(Dataset::from_graph(name, figure1()));
        }
        let names: Vec<String> = r.all().iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
