//! The readiness-driven I/O layer: one multiplexing reactor thread
//! feeding the worker pool through a bounded request queue.
//!
//! The blocking layer in [`crate::serve::pool`] parks one worker per
//! connection, so the worker count caps the number of *connections*
//! the server can hold open — the wrong shape for many mostly-idle
//! keep-alive clients. This layer decouples the two: a single reactor
//! thread owns every socket in non-blocking mode, assembles complete
//! newline-delimited request lines, and hands each line to the worker
//! pool as an independent job. Workers never touch a socket; they
//! return the rendered response to the reactor, which writes responses
//! back **in request order per connection** no matter which worker
//! finished first. Connections are kept alive across requests and may
//! pipeline freely (up to [`MAX_PIPELINE`] requests in flight each —
//! past that the reactor simply stops reading the socket, so TCP
//! backpressure does the throttling).
//!
//! Everything is `std`-only. With no `poll(2)` binding available, the
//! reactor's wait primitive is a condition variable that workers signal
//! on completion, bounded by a short timeout ([`ACTIVE_WAIT`]) that
//! doubles as the socket-readiness poll interval; an iteration that
//! made progress loops again immediately, so a busy server never
//! sleeps.
//!
//! Overload is per *request* here, not per connection: when the job
//! queue is full the reactor answers that line with an `overloaded`
//! error in its proper pipeline position and keeps the connection —
//! clients see a well-formed response they can retry, instead of the
//! blocking layer's answer-and-hang-up at accept time.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json::JsonValue;
use crate::serve::handler::{handle, note_panic, ServerContext};
use crate::serve::protocol::{error_response, ok_response, parse_request, ErrorCode, WireError};

/// Per-connection cap on requests dispatched to workers but not yet
/// answered. A connection that pipelines past this depth stops being
/// read until responses drain, so one client cannot monopolise the
/// request queue or make the server buffer unbounded responses.
pub(crate) const MAX_PIPELINE: usize = 64;

/// Bytes read from one socket per reactor visit.
const SCRATCH: usize = 16 * 1024;

/// Reactor wait when connections are open but nothing was ready: long
/// enough not to burn a core on an idle connection, short enough that
/// socket-readiness polling adds at most a fraction of a millisecond
/// to request latency. Worker completions interrupt the wait.
const ACTIVE_WAIT: Duration = Duration::from_micros(200);

/// Reactor wait when no connection is open (only accepts and the
/// shutdown latch need polling).
const IDLE_WAIT: Duration = Duration::from_millis(2);

/// After shutdown, connections that cannot flush their remaining
/// responses within this grace period are dropped.
const DRAIN_GRACE: Duration = Duration::from_secs(3);

/// One complete request line travelling to the worker pool.
pub(crate) struct Job {
    conn: usize,
    generation: u64,
    seq: u64,
    line: Vec<u8>,
    received: Instant,
}

/// One response travelling back. Always present: a handler panic is
/// caught in the worker and rendered as an `internal_error` response,
/// so the faulty request is the only casualty — the worker, the
/// connection, and every pipelined neighbor keep going.
pub(crate) struct Completion {
    conn: usize,
    generation: u64,
    seq: u64,
    response: String,
}

/// Bounded multi-producer multi-consumer queue of request jobs.
pub(crate) struct JobQueue {
    state: Mutex<JobState>,
    ready: Condvar,
    capacity: usize,
}

struct JobState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    /// A queue holding at most `capacity` waiting jobs.
    pub(crate) fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(JobState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, or hands it back when the queue is full (the
    /// reactor answers `overloaded`) or closed.
    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.state.lock().unwrap();
        if state.closed || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Closes the queue and wakes every blocked worker.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// Completed responses flowing back to the reactor. Pushing signals the
/// condition variable the reactor waits on, so a finished request wakes
/// the reactor immediately instead of waiting out the poll interval.
#[derive(Default)]
pub(crate) struct CompletionBus {
    done: Mutex<Vec<Completion>>,
    signal: Condvar,
}

impl CompletionBus {
    /// An empty bus.
    pub(crate) fn new() -> CompletionBus {
        CompletionBus::default()
    }

    fn push(&self, completion: Completion) {
        self.done.lock().unwrap().push(completion);
        self.signal.notify_one();
    }

    /// Takes every pending completion. With `wait`, blocks up to that
    /// long for the first one when none are pending.
    fn drain(&self, wait: Option<Duration>) -> Vec<Completion> {
        let mut guard = self.done.lock().unwrap();
        if guard.is_empty() {
            if let Some(timeout) = wait {
                guard = self.signal.wait_timeout(guard, timeout).unwrap().0;
            }
        }
        std::mem::take(&mut *guard)
    }
}

/// One worker: answer request jobs until the queue closes.
pub(crate) fn worker_loop(queue: &JobQueue, bus: &CompletionBus, ctx: &ServerContext) {
    while let Some(job) = queue.pop() {
        ctx.queued_requests.fetch_sub(1, Ordering::Relaxed);
        let response = respond(ctx, &job);
        bus.push(Completion {
            conn: job.conn,
            generation: job.generation,
            seq: job.seq,
            response,
        });
    }
}

/// Parses and routes one request line — the same pipeline as the
/// blocking layer's per-connection loop, so responses are byte-identical
/// between the two I/O modes. A handler panic is confined to the
/// request that caused it: parsing happens outside the unwind guard so
/// the client's `id` survives into the `internal_error` response.
fn respond(ctx: &ServerContext, job: &Job) -> String {
    let text = String::from_utf8_lossy(&job.line);
    match parse_request(text.trim()) {
        Err(e) => error_response(&JsonValue::Null, &e),
        Ok(req) => {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle(ctx, &req, job.received)
            })) {
                Ok(Ok(result)) => ok_response(&req.id, result),
                Ok(Err(e)) => error_response(&req.id, &e),
                Err(_) => error_response(&req.id, &note_panic(ctx)),
            }
        }
    }
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    /// Distinguishes this connection from earlier users of the same
    /// slot, so a late completion for a dropped connection can never be
    /// delivered to its successor.
    generation: u64,
    /// Bytes received but not yet parsed into lines.
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline.
    scanned: usize,
    /// Rendered responses awaiting the socket, in order.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    write_pos: usize,
    /// Sequence number the next parsed request will get.
    next_seq: u64,
    /// Sequence number the next written response must have.
    next_write: u64,
    /// Requests dispatched to workers and not yet completed.
    in_flight: usize,
    /// Completed responses that arrived out of order.
    pending: BTreeMap<u64, String>,
    /// Peer closed its write side; parse what remains, then close.
    eof: bool,
    /// Stop reading; close once every outstanding response is flushed.
    closing: bool,
    /// Drop now, discarding anything outstanding.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, generation: u64) -> Conn {
        Conn {
            stream,
            generation,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            next_write: 0,
            in_flight: 0,
            pending: BTreeMap::new(),
            eof: false,
            closing: false,
            dead: false,
        }
    }

    /// Whether any accepted request still awaits its response bytes on
    /// the wire.
    fn outstanding(&self) -> bool {
        self.next_write < self.next_seq || self.write_pos < self.write_buf.len()
    }

    /// Moves completed in-order responses into the write buffer.
    fn promote(&mut self) {
        while let Some(response) = self.pending.remove(&self.next_write) {
            self.write_buf.extend_from_slice(response.as_bytes());
            self.write_buf.push(b'\n');
            self.next_write += 1;
        }
    }

    /// Queues a `request_too_large` response in pipeline order and
    /// stops reading — same contract as the blocking layer: the error
    /// is answered, then the connection closes.
    fn reject_too_large(&mut self, max: usize) {
        let err = WireError::new(
            ErrorCode::RequestTooLarge,
            format!("request line exceeds {max} bytes"),
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending
            .insert(seq, error_response(&JsonValue::Null, &err));
        self.closing = true;
        self.read_buf.clear();
        self.scanned = 0;
    }

    /// Whether `read_buf` already holds at least one complete line.
    fn has_complete_line(&self) -> bool {
        self.read_buf.contains(&b'\n')
    }
}

/// The reactor: owns the listener and every connection.
struct Reactor {
    listener: TcpListener,
    ctx: Arc<ServerContext>,
    queue: Arc<JobQueue>,
    bus: Arc<CompletionBus>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u64,
}

/// Runs the reactor until the shutdown latch trips and every
/// connection has drained (or the grace period expires). Closes the
/// job queue on exit so the workers terminate.
pub(crate) fn run(
    listener: TcpListener,
    ctx: Arc<ServerContext>,
    queue: Arc<JobQueue>,
    bus: Arc<CompletionBus>,
) {
    let _ = listener.set_nonblocking(true);
    let mut reactor = Reactor {
        listener,
        ctx,
        queue,
        bus,
        conns: Vec::new(),
        free: Vec::new(),
        generation: 0,
    };
    let mut draining_since: Option<Instant> = None;
    loop {
        let mut progress = false;
        for completion in reactor.bus.drain(None) {
            reactor.apply(completion);
            progress = true;
        }
        if draining_since.is_none() && reactor.ctx.shutdown.load(Ordering::SeqCst) {
            draining_since = Some(Instant::now());
            // Stop reading everywhere: in-flight requests complete and
            // flush, new bytes are ignored.
            for conn in reactor.conns.iter_mut().flatten() {
                conn.closing = true;
            }
        }
        if draining_since.is_none() {
            progress |= reactor.accept_new();
        }
        progress |= reactor.service_conns();
        reactor.reap();
        if let Some(since) = draining_since {
            if reactor.open_count() == 0 {
                break;
            }
            if since.elapsed() > DRAIN_GRACE {
                reactor.drop_all();
                break;
            }
        }
        if !progress {
            let timeout = if reactor.open_count() > 0 {
                ACTIVE_WAIT
            } else {
                IDLE_WAIT
            };
            for completion in reactor.bus.drain(Some(timeout)) {
                reactor.apply(completion);
            }
        }
    }
    reactor.queue.close();
}

impl Reactor {
    fn open_count(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Accepts every pending connection; non-blocking.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.ctx.connections.fetch_add(1, Ordering::Relaxed);
                    self.ctx.open_connections.fetch_add(1, Ordering::Relaxed);
                    self.generation += 1;
                    let conn = Conn::new(stream, self.generation);
                    match self.free.pop() {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Persistent accept failures (e.g. EMFILE under an fd
                // exhaustion) must not hot-spin; the outer wait paces
                // retries.
                Err(_) => break,
            }
        }
        any
    }

    /// Delivers one worker completion to its connection, unless the
    /// connection is gone or the slot was reused.
    fn apply(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(completion.conn).and_then(Option::as_mut) else {
            return;
        };
        if conn.generation != completion.generation {
            return;
        }
        conn.in_flight -= 1;
        conn.pending.insert(completion.seq, completion.response);
    }

    /// Flush + read + parse every connection once.
    fn service_conns(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            progress |= service_conn(&self.ctx, &self.queue, &mut conn, slot);
            self.conns[slot] = Some(conn);
        }
        progress
    }

    /// Drops connections that are dead or fully drained.
    fn reap(&mut self) {
        for slot in 0..self.conns.len() {
            let done = match &self.conns[slot] {
                Some(c) => {
                    c.dead
                        || (c.closing && !c.outstanding())
                        || (c.eof && !c.has_complete_line() && !c.outstanding())
                }
                None => false,
            };
            if done {
                self.conns[slot] = None;
                self.free.push(slot);
                self.ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every connection (shutdown grace expired).
    fn drop_all(&mut self) {
        for slot in 0..self.conns.len() {
            if self.conns[slot].take().is_some() {
                self.ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// One reactor visit to one connection: promote completed responses,
/// flush, read, parse lines, dispatch jobs.
fn service_conn(ctx: &ServerContext, queue: &JobQueue, conn: &mut Conn, slot: usize) -> bool {
    let mut progress = false;
    conn.promote();

    // Flush as much of the write buffer as the socket accepts.
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.write_pos += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.write_pos > 0 && conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }

    // Read once; backpressure by simply not reading when the pipeline
    // is full.
    if !conn.dead && !conn.closing && !conn.eof && conn.in_flight < MAX_PIPELINE {
        let mut scratch = [0u8; SCRATCH];
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.eof = true;
                progress = true;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                progress = true;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => conn.dead = true,
        }
    }

    // Parse complete lines. A line is "committed" only once its newline
    // arrived — identical to the blocking reader — so segment
    // boundaries can never change how a request parses.
    while !conn.dead && !conn.closing && conn.in_flight < MAX_PIPELINE {
        let Some(rel) = conn.read_buf[conn.scanned..]
            .iter()
            .position(|&b| b == b'\n')
        else {
            conn.scanned = conn.read_buf.len();
            if conn.read_buf.len() > ctx.max_request_bytes {
                conn.reject_too_large(ctx.max_request_bytes);
            }
            break;
        };
        let pos = conn.scanned + rel;
        if pos > ctx.max_request_bytes {
            conn.reject_too_large(ctx.max_request_bytes);
            break;
        }
        let line: Vec<u8> = conn.read_buf[..pos].to_vec();
        conn.read_buf.drain(..=pos);
        conn.scanned = 0;
        // Blank lines keep interactive nc sessions pleasant (and get no
        // response — same as the blocking layer).
        if String::from_utf8_lossy(&line).trim().is_empty() {
            continue;
        }
        ctx.requests.fetch_add(1, Ordering::Relaxed);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let job = Job {
            conn: slot,
            generation: conn.generation,
            seq,
            line,
            received: Instant::now(),
        };
        // Count the request as queued *before* the push: the push wakes
        // a worker, and that worker's matching decrement must never be
        // able to run ahead of this increment (stats would transiently
        // read an underflowed counter).
        ctx.queued_requests.fetch_add(1, Ordering::Relaxed);
        match queue.push(job) {
            Ok(()) => {
                conn.in_flight += 1;
                progress = true;
            }
            Err(_refused) => {
                // Backpressure is per request: answer `overloaded` in
                // this request's pipeline slot and keep the connection.
                ctx.queued_requests.fetch_sub(1, Ordering::Relaxed);
                ctx.overloaded.fetch_add(1, Ordering::Relaxed);
                let err =
                    WireError::new(ErrorCode::Overloaded, "request queue is full; retry later");
                conn.pending
                    .insert(seq, error_response(&JsonValue::Null, &err));
                progress = true;
            }
        }
    }

    conn.promote();
    progress
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64) -> Job {
        Job {
            conn: 0,
            generation: 1,
            seq,
            line: Vec::new(),
            received: Instant::now(),
        }
    }

    #[test]
    fn job_queue_bounds_and_closes() {
        let q = JobQueue::new(2);
        assert!(q.push(job(0)).is_ok());
        assert!(q.push(job(1)).is_ok());
        let refused = q.push(job(2));
        assert!(refused.is_err(), "third push must be refused");
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.push(job(2)).is_ok(), "pop frees a slot");
        q.close();
        assert!(q.push(job(3)).is_err(), "closed queue refuses");
        assert_eq!(q.pop().unwrap().seq, 1, "drains after close");
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn completion_bus_wakes_a_waiter() {
        let bus = Arc::new(CompletionBus::new());
        let b2 = Arc::clone(&bus);
        let waiter = std::thread::spawn(move || b2.drain(Some(Duration::from_secs(10))));
        std::thread::sleep(Duration::from_millis(20));
        bus.push(Completion {
            conn: 3,
            generation: 1,
            seq: 7,
            response: "x".into(),
        });
        let got = waiter.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 7);
    }

    #[test]
    fn promote_respects_request_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream, 1);
        conn.next_seq = 3;
        // Responses 2 and 0 completed; 1 is still in a worker.
        conn.pending.insert(2, "two".into());
        conn.pending.insert(0, "zero".into());
        conn.promote();
        assert_eq!(conn.write_buf, b"zero\n", "stops at the gap");
        conn.pending.insert(1, "one".into());
        conn.promote();
        assert_eq!(conn.write_buf, b"zero\none\ntwo\n");
        assert!(!conn.pending.is_empty() || conn.next_write == 3);
        assert!(conn.outstanding(), "bytes still unflushed");
    }

    #[test]
    fn too_large_reply_takes_its_pipeline_slot() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut conn = Conn::new(stream, 1);
        conn.read_buf = vec![b'x'; 100];
        conn.reject_too_large(50);
        assert!(conn.closing);
        assert!(conn.read_buf.is_empty());
        conn.promote();
        let text = String::from_utf8(conn.write_buf.clone()).unwrap();
        assert!(text.contains("request_too_large"), "{text}");
        assert!(text.contains("exceeds 50 bytes"), "{text}");
    }
}
