//! Request routing: one parsed [`Request`] in, one result (or
//! [`WireError`]) out.
//!
//! Handlers are pure with respect to the connection: they see only the
//! shared [`ServerContext`], so the same request produces the same
//! result no matter which worker thread, connection, or interleaving
//! carried it — the property the end-to-end tests pin down by comparing
//! concurrent responses byte for byte.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kor_core::{BucketBoundParams, GreedyParams, KorError, KorQuery, OsScalingParams, RouteResult};
use kor_data::FaultAction;

use crate::json::JsonValue;
use crate::serve::protocol::{ErrorCode, Request, WireError};
use crate::serve::recovery::{self, JournalState};
use crate::serve::registry::{Dataset, Registry, ResolveError};
use crate::serve::IoMode;
use crate::shard::{ShardPlan, ShardRouter};

use std::sync::Arc;

/// State shared by every worker: the dataset registry, counters, and
/// the shutdown latch.
pub struct ServerContext {
    /// Loaded datasets.
    pub registry: Registry,
    /// Directory holding one write-ahead `.korj` journal (plus
    /// checkpoints) per dataset; `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Open journals keyed by dataset name, each with what its last
    /// recovery replayed. Replaced together with the registry entry
    /// under [`Registry::mutation_guard`].
    pub journals: Mutex<HashMap<String, JournalState>>,
    /// When the server started (for `uptime_ms`).
    pub started: Instant,
    /// Worker pool size (reported by `stats`).
    pub threads: usize,
    /// Which I/O layer is serving (reported by `stats`).
    pub io: IoMode,
    /// Resolved backpressure-queue capacity: waiting request lines
    /// (event mode) or waiting connections (blocking mode).
    pub queue_capacity: usize,
    /// Deadline applied to queries that do not carry their own
    /// `deadline_ms`; `0` means unlimited.
    pub default_deadline_ms: u64,
    /// Maximum accepted request-line length in bytes.
    pub max_request_bytes: usize,
    /// Total connections accepted.
    pub connections: AtomicU64,
    /// Connections currently open (accepted, not yet closed).
    pub open_connections: AtomicU64,
    /// Total request lines processed (including failures).
    pub requests: AtomicU64,
    /// Requests (event mode) or connections (blocking mode) sitting in
    /// the backpressure queue right now, not yet picked up by a worker.
    pub queued_requests: AtomicU64,
    /// Total requests/connections answered `overloaded` because that
    /// queue was full.
    pub overloaded: AtomicU64,
    /// Request handlers that panicked and were answered with
    /// `internal_error` instead of killing the worker or connection.
    pub panics: AtomicU64,
    /// Set by the `shutdown` method (and by [`crate::serve::ServerHandle`]);
    /// the listener stops accepting once it observes this.
    pub shutdown: AtomicBool,
}

impl ServerContext {
    /// Fresh context with zeroed counters and a 1 MiB request cap.
    pub fn new(threads: usize, default_deadline_ms: u64) -> ServerContext {
        ServerContext {
            registry: Registry::new(),
            journal_dir: None,
            journals: Mutex::new(HashMap::new()),
            started: Instant::now(),
            threads,
            io: IoMode::Event,
            queue_capacity: 0,
            default_deadline_ms,
            max_request_bytes: 1 << 20,
            connections: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            queued_requests: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Fsyncs every open journal. Appends are already synced record by
    /// record, so this is a belt-and-suspenders pass on graceful
    /// shutdown — and the place sync errors get surfaced.
    pub fn sync_journals(&self) {
        for (name, state) in self.journals.lock().unwrap().iter() {
            if let Err(e) = state.journal.sync() {
                eprintln!("kor serve: journal sync for {name:?} failed: {e}");
            }
        }
    }
}

/// Upper bound on the `k` of top-k queries; untrusted input must not
/// size allocations.
pub const MAX_K: usize = 64;

/// Routes one request to its method handler. `received` is the arrival
/// instant deadlines are measured from.
pub fn handle(
    ctx: &ServerContext,
    req: &Request,
    received: Instant,
) -> Result<JsonValue, WireError> {
    // Crash/panic injection for the robustness batteries: the panic
    // action exercises the per-request `catch_unwind` isolation in both
    // I/O layers; crash exercises recovery from an unflushed death.
    if let Some(action) = kor_data::faultpoint::hit("serve-request") {
        match action {
            FaultAction::Panic => panic!("fault point \"serve-request\": injected panic"),
            FaultAction::IoError => {
                return Err(WireError::new(
                    ErrorCode::InternalError,
                    kor_data::faultpoint::injected_error("serve-request").to_string(),
                ))
            }
            FaultAction::Crash | FaultAction::Torn => kor_data::faultpoint::die("serve-request"),
        }
    }
    match req.method.as_str() {
        "health" => {
            check_keys(&req.params, &[])?;
            Ok(JsonValue::obj([
                ("status", "ok".into()),
                ("datasets", ctx.registry.len().into()),
                ("uptime_ms", millis(ctx.started.elapsed()).into()),
            ]))
        }
        "stats" => stats(ctx, req),
        "load_dataset" => load_dataset(ctx, req),
        "query" => query(ctx, req, received),
        "update_edges" => update_edges(ctx, req),
        "poison_shard" => set_shard_poisoned(ctx, req, true),
        "revive_shard" => set_shard_poisoned(ctx, req, false),
        "shutdown" => {
            check_keys(&req.params, &[])?;
            ctx.shutdown.store(true, Ordering::SeqCst);
            Ok(JsonValue::obj([("stopping", true.into())]))
        }
        other => Err(WireError::new(
            ErrorCode::UnknownMethod,
            format!(
                "unknown method {other:?} (expected query, update_edges, load_dataset, \
                 poison_shard, revive_shard, stats, health, or shutdown)"
            ),
        )),
    }
}

fn stats(ctx: &ServerContext, req: &Request) -> Result<JsonValue, WireError> {
    check_keys(&req.params, &["dataset"])?;
    let datasets: Vec<Arc<Dataset>> = match opt_str(&req.params, "dataset")? {
        Some(name) => vec![resolve(&ctx.registry, Some(name))?],
        None => ctx.registry.all(),
    };
    let journals = ctx.journals.lock().unwrap();
    let per_dataset: Vec<JsonValue> = datasets
        .iter()
        .map(|d| {
            let g = d.engine().graph();
            let prep = d.engine().preprocess_stats();
            let mut fields: Vec<(&'static str, JsonValue)> = vec![
                ("name", d.name().into()),
                ("nodes", g.node_count().into()),
                ("edges", g.edge_count().into()),
                ("epoch", g.epoch().into()),
                ("keywords", g.vocab().len().into()),
                ("queries_served", d.queries_served().into()),
                ("cached_trees", d.engine().cached_tree_count().into()),
                (
                    "prep_cache",
                    JsonValue::obj([
                        (
                            "contexts",
                            d.engine().preprocess_cache().context_entries().into(),
                        ),
                        ("opt2", d.engine().preprocess_cache().opt2_entries().into()),
                        ("ctx_hits", prep.ctx_hits.into()),
                        ("ctx_misses", prep.ctx_misses.into()),
                        ("opt2_hits", prep.opt2_hits.into()),
                        ("opt2_misses", prep.opt2_misses.into()),
                        ("reach_hits", prep.reach_hits.into()),
                        ("reach_misses", prep.reach_misses.into()),
                        ("evictions", prep.evictions.into()),
                        ("invalidated", prep.invalidated.into()),
                        ("retained", prep.retained.into()),
                        ("trees_built", prep.trees_built.into()),
                        ("hit_rate", prep.hit_rate().into()),
                    ]),
                ),
            ];
            if let Some(router) = d.router() {
                fields.push(("shards", shards_json(router)));
            }
            if let Some(state) = journals.get(d.name()) {
                fields.push((
                    "journal",
                    JsonValue::obj([
                        ("epoch", state.journal.epoch().into()),
                        ("records", state.journal.records().into()),
                        ("recovered_epoch", state.recovered.epoch.into()),
                        ("recovered_batches", state.recovered.batches.into()),
                    ]),
                ));
            }
            JsonValue::obj(fields)
        })
        .collect();
    drop(journals);
    Ok(JsonValue::obj([
        ("threads", ctx.threads.into()),
        ("uptime_ms", millis(ctx.started.elapsed()).into()),
        (
            "connections",
            ctx.connections.load(Ordering::Relaxed).into(),
        ),
        ("requests", ctx.requests.load(Ordering::Relaxed).into()),
        (
            "server",
            JsonValue::obj([
                ("io", ctx.io.as_str().into()),
                (
                    "open_connections",
                    ctx.open_connections.load(Ordering::Relaxed).into(),
                ),
                (
                    "queued_requests",
                    ctx.queued_requests.load(Ordering::Relaxed).into(),
                ),
                ("queue_capacity", ctx.queue_capacity.into()),
                ("overloaded", ctx.overloaded.load(Ordering::Relaxed).into()),
                ("panics", ctx.panics.load(Ordering::Relaxed).into()),
                ("journaling", ctx.journal_dir.is_some().into()),
            ]),
        ),
        ("datasets", JsonValue::Arr(per_dataset)),
    ]))
}

/// The `shards` stats section of one sharded dataset: routing totals
/// plus per-shard ownership and health counters, in shard-id order.
fn shards_json(router: &ShardRouter) -> JsonValue {
    let per_shard: Vec<JsonValue> = router
        .shard_counters()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            JsonValue::obj([
                ("shard", (i as u64).into()),
                ("nodes", c.nodes.into()),
                ("queries", c.queries.into()),
                ("local_hits", c.local_hits.into()),
                ("poisoned", c.poisoned.into()),
            ])
        })
        .collect();
    JsonValue::obj([
        ("count", u64::from(router.shard_count()).into()),
        ("cut_edges", (router.info().cut_edges.len() as u64).into()),
        ("fused_only", router.fused_only().into()),
        ("fanouts", router.fanouts().into()),
        ("rejected", router.rejected().into()),
        ("per_shard", JsonValue::Arr(per_shard)),
    ])
}

/// `poison_shard` / `revive_shard`: fault injection on a sharded
/// dataset. Poisoning marks one shard unavailable — its queries fail
/// with `shard_unavailable` while every other shard keeps answering.
fn set_shard_poisoned(
    ctx: &ServerContext,
    req: &Request,
    poisoned: bool,
) -> Result<JsonValue, WireError> {
    check_keys(&req.params, &["dataset", "shard"])?;
    let dataset = resolve(&ctx.registry, opt_str(&req.params, "dataset")?)?;
    let shard = req_u32(&req.params, "shard")?;
    let router = dataset.router().ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("dataset {:?} is not sharded", dataset.name()),
        )
    })?;
    let changed = if poisoned {
        router.poison(shard)
    } else {
        router.revive(shard)
    };
    if !changed {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!(
                "shard {shard} out of range (dataset {:?} has {} shards)",
                dataset.name(),
                router.shard_count()
            ),
        ));
    }
    Ok(JsonValue::obj([
        ("dataset", dataset.name().into()),
        ("shard", u64::from(shard).into()),
        ("poisoned", poisoned.into()),
    ]))
}

fn load_dataset(ctx: &ServerContext, req: &Request) -> Result<JsonValue, WireError> {
    check_keys(&req.params, &["path", "name"])?;
    let path = req_str(&req.params, "path")?;
    let name = match opt_str(&req.params, "name")? {
        Some(n) if !n.is_empty() => n.to_string(),
        Some(_) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "\"name\" must be non-empty",
            ))
        }
        None => Dataset::name_from_path(std::path::Path::new(path)).ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                "cannot derive a dataset name from \"path\"; pass \"name\"",
            )
        })?,
    };
    // Serialize with `update_edges` so journal state and registry entry
    // replace together: a racing batch lands entirely before this load
    // (and is replayed by it, journal permitting) or entirely after,
    // against the freshly loaded dataset. Loads are rare; the guard is
    // not on any query path.
    let _guard = ctx.registry.mutation_guard();
    let (dataset, recovered) = match &ctx.journal_dir {
        Some(dir) => {
            let (dataset, state) = recovery::attach(dir, &name, std::path::Path::new(path))
                .map_err(|e| WireError::new(ErrorCode::LoadFailed, e))?;
            let info = state.recovered;
            ctx.journals.lock().unwrap().insert(name.clone(), state);
            (dataset, Some(info))
        }
        None => {
            let dataset = Dataset::load(&name, std::path::Path::new(path))
                .map_err(|e| WireError::new(ErrorCode::LoadFailed, e))?;
            (dataset, None)
        }
    };
    let (nodes, edges, keywords) = {
        let g = dataset.engine().graph();
        (g.node_count(), g.edge_count(), g.vocab().len())
    };
    let shards = dataset.router().map_or(0, ShardRouter::shard_count);
    let replaced = ctx.registry.insert(dataset);
    let mut fields: Vec<(&'static str, JsonValue)> = vec![
        ("name", name.into()),
        ("nodes", nodes.into()),
        ("edges", edges.into()),
        ("keywords", keywords.into()),
        ("shards", u64::from(shards).into()),
        ("replaced", replaced.into()),
    ];
    if let Some(info) = recovered {
        fields.push(("recovered_epoch", info.epoch.into()));
        fields.push(("recovered_batches", info.batches.into()));
    }
    Ok(JsonValue::obj(fields))
}

fn query(ctx: &ServerContext, req: &Request, received: Instant) -> Result<JsonValue, WireError> {
    check_keys(
        &req.params,
        &[
            "dataset",
            "from",
            "to",
            "keywords",
            "budget",
            "algo",
            "k",
            "epsilon",
            "beta",
            "alpha",
            "beam",
            "deadline_ms",
        ],
    )?;
    let dataset = resolve(&ctx.registry, opt_str(&req.params, "dataset")?)?;
    let engine = dataset.engine();

    let from = req_u32(&req.params, "from")?;
    let to = req_u32(&req.params, "to")?;
    let budget = req_f64(&req.params, "budget")?;
    let keywords: Vec<String> = match req.params.get("keywords") {
        None => Vec::new(),
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str().map(str::to_string).ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "\"keywords\" must contain strings")
                })
            })
            .collect::<Result<_, _>>()?,
        Some(_) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "\"keywords\" must be an array of strings",
            ))
        }
    };
    let algo = opt_str(&req.params, "algo")?.unwrap_or("os-scaling");
    let k = opt_u64(&req.params, "k")?.unwrap_or(1) as usize;
    if k == 0 {
        return Err(WireError::new(ErrorCode::BadRequest, "\"k\" must be ≥ 1"));
    }
    // Untrusted sizes never reach an allocator: an absurd k would
    // otherwise flow into the top-k result set's pre-allocation.
    if k > MAX_K {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!("\"k\" must be ≤ {MAX_K}"),
        ));
    }
    // Tuning knobs stay `None` unless the request sent them: the
    // paper's defaults live in kor-core's `*Params::default()` only, so
    // served results cannot drift from the `kor query` CLI (which uses
    // the same defaults) if those values are ever tuned.
    let epsilon = opt_f64(&req.params, "epsilon")?;
    let beta = opt_f64(&req.params, "beta")?;
    let alpha = opt_f64(&req.params, "alpha")?;
    let beam = opt_u64(&req.params, "beam")?.map(|b| b as usize);
    if beam == Some(0) {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "\"beam\" must be ≥ 1",
        ));
    }
    // A knob that the selected algorithm never reads is a client bug,
    // the same class of mistake as a typo'd key — reject it rather
    // than silently serving default-tuned results.
    let irrelevant: &[(&str, bool)] = match algo {
        "os-scaling" => &[
            ("beta", beta.is_some()),
            ("alpha", alpha.is_some()),
            ("beam", beam.is_some()),
        ],
        "bucket-bound" => &[("alpha", alpha.is_some()), ("beam", beam.is_some())],
        "exact" => &[
            ("epsilon", epsilon.is_some()),
            ("beta", beta.is_some()),
            ("alpha", alpha.is_some()),
            ("beam", beam.is_some()),
        ],
        "greedy" => &[("epsilon", epsilon.is_some()), ("beta", beta.is_some())],
        _ => &[], // unknown algo is rejected by the dispatch below
    };
    if let Some((name, _)) = irrelevant.iter().find(|(_, present)| *present) {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!("\"{name}\" does not apply to algo {algo:?}"),
        ));
    }
    // `checked_add` because `Instant + Duration` panics on overflow:
    // an absurd client-supplied deadline_ms (e.g. 1e18) must not kill
    // the request. A deadline past the representable future can never
    // fire, so overflow degrades to "unlimited".
    let deadline = match opt_u64(&req.params, "deadline_ms")? {
        Some(ms) => received.checked_add(Duration::from_millis(ms)),
        None if ctx.default_deadline_ms > 0 => {
            received.checked_add(Duration::from_millis(ctx.default_deadline_ms))
        }
        None => None,
    };

    let graph = engine.graph();
    let query = KorQuery::from_terms(
        graph,
        kor_graph::NodeId(from),
        kor_graph::NodeId(to),
        keywords.iter().map(String::as_str),
        budget,
    )
    .map_err(engine_error)?;

    dataset.note_query();
    // Sharded datasets route here. A query proven confined to one shard
    // runs on that shard's engine with the scaling extrema anchored to
    // the fused graph, so its answer matches the single-engine answer
    // bit for bit; anything else fans out to the fused engine, the only
    // search that can see cut edges. Greedy never runs shard-locally —
    // its pair-cost heuristics consult paths that may cross shards even
    // when the final route would not.
    let (engine, anchor) = match dataset.router() {
        Some(router) => {
            let local_capable = matches!(algo, "os-scaling" | "bucket-bound" | "exact");
            let plan = router
                .plan(query.source, query.target, query.budget, local_capable)
                .map_err(|e| WireError::new(ErrorCode::ShardUnavailable, e.to_string()))?;
            match plan {
                ShardPlan::Local(s) => (router.engine(s), Some(router.anchor())),
                ShardPlan::Fanout => (dataset.engine(), None),
            }
        }
        None => (dataset.engine(), None),
    };
    let mut extra: Vec<(&'static str, JsonValue)> = Vec::new();
    let routes: Vec<RouteResult> = match algo {
        "os-scaling" => {
            let mut params = OsScalingParams {
                deadline,
                anchor,
                ..OsScalingParams::default()
            };
            if let Some(e) = epsilon {
                params.epsilon = e;
            }
            if k == 1 {
                engine
                    .os_scaling(&query, &params)
                    .map_err(engine_error)?
                    .route
                    .into_iter()
                    .collect()
            } else {
                engine
                    .top_k_os_scaling(&query, &params, k)
                    .map_err(engine_error)?
                    .routes
            }
        }
        "bucket-bound" => {
            let mut params = BucketBoundParams {
                deadline,
                anchor,
                ..BucketBoundParams::default()
            };
            if let Some(e) = epsilon {
                params.epsilon = e;
            }
            if let Some(b) = beta {
                params.beta = b;
            }
            if k == 1 {
                engine
                    .bucket_bound(&query, &params)
                    .map_err(engine_error)?
                    .route
                    .into_iter()
                    .collect()
            } else {
                engine
                    .top_k_bucket_bound(&query, &params, k)
                    .map_err(engine_error)?
                    .routes
            }
        }
        "exact" => {
            if k != 1 {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "\"exact\" does not support k > 1",
                ));
            }
            engine
                .exact_with_deadline(&query, deadline)
                .map_err(engine_error)?
                .route
                .into_iter()
                .collect()
        }
        "greedy" => {
            if k != 1 {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "\"greedy\" does not support k > 1",
                ));
            }
            let mut params = GreedyParams::default();
            if let Some(a) = alpha {
                params.alpha = a;
            }
            if let Some(b) = beam {
                params.beam_width = b;
            }
            match engine.greedy(&query, &params).map_err(engine_error)? {
                Some(g) => {
                    extra.push(("covers_keywords", g.covers_keywords.into()));
                    extra.push(("within_budget", g.within_budget.into()));
                    vec![RouteResult {
                        route: g.route,
                        objective: g.objective,
                        budget: g.budget,
                    }]
                }
                None => Vec::new(),
            }
        }
        other => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!(
                    "unknown algo {other:?} (expected os-scaling, bucket-bound, exact, or greedy)"
                ),
            ))
        }
    };

    let mut fields: Vec<(&'static str, JsonValue)> = vec![
        ("dataset", dataset.name().into()),
        ("algo", algo.into()),
        // Which graph generation answered: clients interleaving
        // queries with update_edges use this to tell old-world from
        // new-world responses (each response is wholly one epoch —
        // mutation swaps whole datasets, never edits a live graph).
        ("epoch", dataset.engine().graph().epoch().into()),
        ("feasible", (!routes.is_empty()).into()),
        (
            "routes",
            JsonValue::Arr(routes.iter().map(route_json).collect()),
        ),
    ];
    fields.append(&mut extra);
    Ok(JsonValue::obj(fields))
}

/// `update_edges`: applies a mutation batch (closures, reopenings,
/// weight scalings) to a live dataset. The mutated dataset replaces the
/// registry entry atomically — in-flight queries finish on the old
/// graph (reporting the old `epoch`), later ones see the new graph —
/// and the warm caches carry over every entry whose invalidation stamp
/// avoids the changed edges.
fn update_edges(ctx: &ServerContext, req: &Request) -> Result<JsonValue, WireError> {
    check_keys(&req.params, &["dataset", "mutations"])?;
    let mutations = parse_mutations(&req.params)?;
    // Serialize batches registry-wide: two batches rebuilding from the
    // same base would silently lose one of them on insert.
    let _guard = ctx.registry.mutation_guard();
    let dataset = resolve(&ctx.registry, opt_str(&req.params, "dataset")?)?;
    let (updated, report) = dataset
        .with_mutations(&mutations)
        .map_err(|e| WireError::new(ErrorCode::BadRequest, e.to_string()))?;
    // Write-ahead: the batch becomes durable before it becomes visible.
    // An append failure leaves the registry untouched — the client gets
    // `journal_error`, the dataset still serves the old epoch, and the
    // batch is safe to retry.
    let journaled = if let Some(dir) = &ctx.journal_dir {
        let mut journals = ctx.journals.lock().unwrap();
        let state = match journals.entry(dataset.name().to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            // First journaled batch for a dataset that was loaded
            // before journaling (or inserted from memory): checkpoint
            // the current world and bind a fresh journal to it, so
            // recovery never depends on how the dataset arrived.
            std::collections::hash_map::Entry::Vacant(v) => {
                let state = recovery::seed(dir, &dataset)
                    .map_err(|e| WireError::new(ErrorCode::JournalError, e))?;
                v.insert(state)
            }
        };
        state
            .journal
            .append(report.epoch, &mutations)
            .map_err(|e| {
                WireError::new(
                    ErrorCode::JournalError,
                    format!("write-ahead append failed; the batch was NOT applied: {e}"),
                )
            })?;
        true
    } else {
        false
    };
    let edges = updated.engine().graph().edge_count();
    let router_mode = match updated.router() {
        None => "none",
        Some(r) if r.fused_only() => "fused_only",
        Some(_) => "sharded",
    };
    ctx.registry.insert(updated);
    Ok(JsonValue::obj([
        ("dataset", dataset.name().into()),
        ("epoch", report.epoch.into()),
        ("edges", edges.into()),
        ("applied", (mutations.len() as u64).into()),
        ("router", router_mode.into()),
        ("journaled", journaled.into()),
        (
            "invalidation",
            JsonValue::obj([
                ("contexts_retained", report.contexts_retained.into()),
                ("contexts_evicted", report.contexts_evicted.into()),
                ("opt2_retained", report.opt2_retained.into()),
                ("opt2_evicted", report.opt2_evicted.into()),
                ("pair_trees_retained", report.pair_trees_retained.into()),
                ("pair_trees_evicted", report.pair_trees_evicted.into()),
            ]),
        ),
    ]))
}

/// Parses the `mutations` array of an `update_edges` request. Strict:
/// unknown keys, wrong types, missing weights, and weights on `close`
/// all fail loudly before anything touches the dataset.
fn parse_mutations(params: &JsonValue) -> Result<Vec<kor_graph::EdgeMutation>, WireError> {
    let items = match params.get("mutations") {
        Some(JsonValue::Arr(items)) => items,
        Some(_) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "\"mutations\" must be an array",
            ))
        }
        None => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "missing \"mutations\"",
            ))
        }
    };
    if items.is_empty() {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "\"mutations\" must contain at least one mutation",
        ));
    }
    items
        .iter()
        .map(|item| {
            if !matches!(item, JsonValue::Obj(_)) {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "each mutation must be an object",
                ));
            }
            check_keys(item, &["from", "to", "op", "objective", "budget"])?;
            let from = kor_graph::NodeId(req_u32(item, "from")?);
            let to = kor_graph::NodeId(req_u32(item, "to")?);
            let op = req_str(item, "op")?;
            match op {
                "close" => {
                    for key in ["objective", "budget"] {
                        if item.get(key).is_some() {
                            return Err(WireError::new(
                                ErrorCode::BadRequest,
                                format!("\"{key}\" does not apply to op \"close\""),
                            ));
                        }
                    }
                    Ok(kor_graph::EdgeMutation::close(from, to))
                }
                "reopen" => Ok(kor_graph::EdgeMutation::reopen(
                    from,
                    to,
                    req_f64(item, "objective")?,
                    req_f64(item, "budget")?,
                )),
                "scale" => Ok(kor_graph::EdgeMutation::scale(
                    from,
                    to,
                    req_f64(item, "objective")?,
                    req_f64(item, "budget")?,
                )),
                other => Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown op {other:?} (expected close, reopen, or scale)"),
                )),
            }
        })
        .collect()
}

/// Renders one route: node ids in order plus exact scores (numbers use
/// shortest round-trip formatting, so equal scores render identically).
fn route_json(r: &RouteResult) -> JsonValue {
    JsonValue::obj([
        (
            "nodes",
            JsonValue::Arr(
                r.route
                    .nodes()
                    .iter()
                    .map(|n| JsonValue::from(u64::from(n.0)))
                    .collect(),
            ),
        ),
        ("objective", r.objective.into()),
        ("budget", r.budget.into()),
    ])
}

/// Records a caught handler panic and builds the structured
/// `internal_error` the faulty request is answered with. Both I/O
/// layers funnel their per-request `catch_unwind` arms through here so
/// the response bytes (and the `stats` counter) cannot drift apart.
pub(crate) fn note_panic(ctx: &ServerContext) -> WireError {
    ctx.panics.fetch_add(1, Ordering::Relaxed);
    WireError::new(
        ErrorCode::InternalError,
        "the request handler panicked; the request was not completed (see server \
         logs) — the connection remains usable",
    )
}

fn engine_error(e: KorError) -> WireError {
    match e {
        KorError::DeadlineExceeded => WireError::new(ErrorCode::DeadlineExceeded, e.to_string()),
        other => WireError::new(ErrorCode::BadRequest, other.to_string()),
    }
}

fn resolve(registry: &Registry, name: Option<&str>) -> Result<Arc<Dataset>, WireError> {
    registry.resolve(name).map_err(|e| match e {
        ResolveError::Unknown(n) => WireError::new(
            ErrorCode::UnknownDataset,
            format!("no dataset named {n:?} is loaded"),
        ),
        ResolveError::NoDefault(0) => {
            WireError::new(ErrorCode::UnknownDataset, "no dataset is loaded")
        }
        ResolveError::NoDefault(n) => WireError::new(
            ErrorCode::UnknownDataset,
            format!("{n} datasets are loaded; pass \"dataset\" to pick one"),
        ),
    })
}

fn millis(d: Duration) -> u64 {
    d.as_millis().min(u128::from(u64::MAX)) as u64
}

/// Rejects unknown parameter keys (strict protocol: typos fail loudly
/// instead of being silently ignored).
fn check_keys(params: &JsonValue, allowed: &[&str]) -> Result<(), WireError> {
    if let JsonValue::Obj(fields) = params {
        for (key, _) in fields {
            if !allowed.contains(&key.as_str()) {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown parameter {key:?}"),
                ));
            }
        }
    }
    Ok(())
}

fn req_str<'a>(params: &'a JsonValue, key: &str) -> Result<&'a str, WireError> {
    opt_str(params, key)?
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, format!("missing \"{key}\"")))
}

fn opt_str<'a>(params: &'a JsonValue, key: &str) -> Result<Option<&'a str>, WireError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(Some).ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, format!("\"{key}\" must be a string"))
        }),
    }
}

fn opt_f64(params: &JsonValue, key: &str) -> Result<Option<f64>, WireError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, format!("\"{key}\" must be a number"))
        }),
    }
}

fn req_f64(params: &JsonValue, key: &str) -> Result<f64, WireError> {
    opt_f64(params, key)?
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, format!("missing \"{key}\"")))
}

fn opt_u64(params: &JsonValue, key: &str) -> Result<Option<u64>, WireError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("\"{key}\" must be a non-negative integer"),
            )
        }),
    }
}

fn req_u32(params: &JsonValue, key: &str) -> Result<u32, WireError> {
    let v = opt_u64(params, key)?
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, format!("missing \"{key}\"")))?;
    u32::try_from(v).map_err(|_| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("\"{key}\" exceeds the node id range"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::parse_request;
    use kor_graph::fixtures::figure1;

    fn ctx_with_figure1() -> ServerContext {
        let ctx = ServerContext::new(2, 0);
        ctx.registry.insert(Dataset::from_graph("fig1", figure1()));
        ctx
    }

    fn run(ctx: &ServerContext, line: &str) -> Result<JsonValue, WireError> {
        handle(ctx, &parse_request(line).unwrap(), Instant::now())
    }

    #[test]
    fn health_reports_dataset_count() {
        let ctx = ctx_with_figure1();
        let r = run(&ctx, r#"{"method":"health"}"#).unwrap();
        assert_eq!(r.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(r.get("datasets").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn query_matches_direct_engine_call() {
        // Example 2 of the paper: Q = ⟨v0, v7, {t1, t2}, 10⟩ ⇒ OS 6, BS 10.
        let ctx = ctx_with_figure1();
        let r = run(
            &ctx,
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#,
        )
        .unwrap();
        assert_eq!(r.get("feasible").and_then(JsonValue::as_bool), Some(true));
        let route = &r.get("routes").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            route.get("objective").and_then(JsonValue::as_f64),
            Some(6.0)
        );
        assert_eq!(route.get("budget").and_then(JsonValue::as_f64), Some(10.0));
        let nodes: Vec<u64> = route
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(JsonValue::as_u64)
            .collect();
        assert_eq!(nodes, vec![0, 2, 3, 4, 7]);
        assert_eq!(ctx.registry.get("fig1").unwrap().queries_served(), 1);
    }

    #[test]
    fn all_algorithms_answer() {
        let ctx = ctx_with_figure1();
        for algo in ["os-scaling", "bucket-bound", "exact", "greedy"] {
            let r = run(
                &ctx,
                &format!(
                    r#"{{"method":"query","params":{{"from":0,"to":7,"keywords":["t1"],"budget":10,"algo":"{algo}"}}}}"#
                ),
            )
            .unwrap();
            assert_eq!(
                r.get("feasible").and_then(JsonValue::as_bool),
                Some(true),
                "{algo}"
            );
        }
    }

    #[test]
    fn top_k_returns_sorted_routes() {
        let ctx = ctx_with_figure1();
        let r = run(
            &ctx,
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":12,"algo":"bucket-bound","k":3}}"#,
        )
        .unwrap();
        let routes = r.get("routes").unwrap().as_arr().unwrap();
        assert!(!routes.is_empty());
        let objectives: Vec<f64> = routes
            .iter()
            .filter_map(|x| x.get("objective").and_then(JsonValue::as_f64))
            .collect();
        let mut sorted = objectives.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(objectives, sorted);
    }

    #[test]
    fn bad_requests_get_structured_errors() {
        let ctx = ctx_with_figure1();
        for (line, code) in [
            (
                r#"{"method":"query","params":{"from":0,"to":7}}"#,
                ErrorCode::BadRequest, // missing budget
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"frm":1}}"#,
                ErrorCode::BadRequest, // typo'd key
            ),
            (
                r#"{"method":"query","params":{"from":99,"to":7,"budget":5}}"#,
                ErrorCode::BadRequest, // unknown node
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"algo":"dijkstra"}}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"k":1000000000000000}}"#,
                ErrorCode::BadRequest, // k beyond the cap must not reach an allocator
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"algo":"os-scaling","beta":5.0}}"#,
                ErrorCode::BadRequest, // beta does not apply to os-scaling
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"algo":"exact","epsilon":0.1}}"#,
                ErrorCode::BadRequest, // exact takes no tuning knobs
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"algo":"greedy","epsilon":0.1}}"#,
                ErrorCode::BadRequest, // epsilon does not apply to greedy
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"algo":"greedy","beam":0}}"#,
                ErrorCode::BadRequest, // beam 0 is rejected, not clamped
            ),
            (
                r#"{"method":"query","params":{"from":0,"to":7,"budget":5,"dataset":"nope"}}"#,
                ErrorCode::UnknownDataset,
            ),
            (r#"{"method":"frobnicate"}"#, ErrorCode::UnknownMethod),
            (
                r#"{"method":"load_dataset","params":{"path":"/nonexistent.korg"}}"#,
                ErrorCode::LoadFailed,
            ),
            (
                r#"{"method":"update_edges","params":{}}"#,
                ErrorCode::BadRequest, // missing mutations
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[]}}"#,
                ErrorCode::BadRequest, // empty batch
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":"close all"}}"#,
                ErrorCode::BadRequest, // mutations must be an array
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"demolish"}]}}"#,
                ErrorCode::BadRequest, // unknown op
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"close","objective":2.0,"budget":1.0}]}}"#,
                ErrorCode::BadRequest, // close takes no weights
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"scale"}]}}"#,
                ErrorCode::BadRequest, // scale requires both multipliers
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":7,"op":"close"}]}}"#,
                ErrorCode::BadRequest, // no such edge in figure 1
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"scale","objective":1.0,"budget":0.0}]}}"#,
                ErrorCode::BadRequest, // zero multiplier
            ),
            (
                r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"close"},{"from":0,"to":1,"op":"close"}]}}"#,
                ErrorCode::BadRequest, // duplicate pair in one batch
            ),
            (
                r#"{"method":"update_edges","params":{"dataset":"nope","mutations":[{"from":0,"to":1,"op":"close"}]}}"#,
                ErrorCode::UnknownDataset,
            ),
        ] {
            let err = run(&ctx, line).unwrap_err();
            assert_eq!(err.code, code, "{line} -> {}", err.message);
        }
    }

    #[test]
    fn update_edges_swaps_the_dataset_and_reports_invalidation() {
        let ctx = ctx_with_figure1();
        // Warm the cache, then close the v5 -> v7 detour: the optimal
        // route for Example 2 avoids it, so the answer must not change.
        let query = r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;
        let before = run(&ctx, query).unwrap();
        assert_eq!(before.get("epoch").and_then(JsonValue::as_u64), Some(0));

        let r = run(
            &ctx,
            r#"{"method":"update_edges","params":{"dataset":"fig1","mutations":[{"from":5,"to":7,"op":"close"}]}}"#,
        )
        .unwrap();
        assert_eq!(r.get("epoch").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(r.get("edges").and_then(JsonValue::as_u64), Some(11));
        assert_eq!(r.get("applied").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(r.get("router").and_then(JsonValue::as_str), Some("none"));
        let inv = r.get("invalidation").expect("invalidation counters");
        let count = |key| inv.get(key).and_then(JsonValue::as_u64).unwrap();
        // v7 is the only warmed target and the closed edge points at
        // it, so its context (and opt2 trees, if any) must go.
        assert_eq!(count("contexts_evicted"), 1);
        assert_eq!(count("contexts_retained"), 0);

        let after = run(&ctx, query).unwrap();
        assert_eq!(after.get("epoch").and_then(JsonValue::as_u64), Some(1));
        for key in ["feasible", "routes"] {
            assert_eq!(before.get(key), after.get(key), "{key}");
        }
        // The query counter survives the swap: 2 queries + 0 for the
        // mutation itself.
        assert_eq!(ctx.registry.get("fig1").unwrap().queries_served(), 2);

        // Reopen with the original weights restores epoch-0 behavior on
        // a third-generation graph.
        run(
            &ctx,
            r#"{"method":"update_edges","params":{"mutations":[{"from":5,"to":7,"op":"reopen","objective":4.0,"budget":1.0}]}}"#,
        )
        .unwrap();
        let restored = run(&ctx, query).unwrap();
        assert_eq!(restored.get("epoch").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(before.get("routes"), restored.get("routes"));
    }

    #[test]
    fn stats_reports_epoch_and_invalidation_counters() {
        let ctx = ctx_with_figure1();
        run(
            &ctx,
            r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"scale","objective":1.0,"budget":2.0}]}}"#,
        )
        .unwrap();
        let r = run(&ctx, r#"{"method":"stats"}"#).unwrap();
        let ds = &r.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(ds.get("epoch").and_then(JsonValue::as_u64), Some(1));
        let prep = ds.get("prep_cache").expect("prep cache stats");
        assert!(prep
            .get("invalidated")
            .and_then(JsonValue::as_u64)
            .is_some());
        assert!(prep.get("retained").and_then(JsonValue::as_u64).is_some());
    }

    #[test]
    fn relevant_knobs_are_accepted() {
        let ctx = ctx_with_figure1();
        for params in [
            r#""algo":"os-scaling","epsilon":0.3,"k":2"#,
            r#""algo":"bucket-bound","epsilon":0.3,"beta":1.5"#,
            r#""algo":"greedy","alpha":0.7,"beam":2"#,
            r#""algo":"exact","deadline_ms":60000"#,
        ] {
            let line = format!(
                r#"{{"method":"query","params":{{"from":0,"to":7,"keywords":["t1"],"budget":10,{params}}}}}"#
            );
            let r = run(&ctx, &line).unwrap_or_else(|e| panic!("{params}: {}", e.message));
            assert_eq!(
                r.get("feasible").and_then(JsonValue::as_bool),
                Some(true),
                "{params}"
            );
        }
    }

    #[test]
    fn absurd_deadline_is_unlimited_not_a_panic() {
        // Instant + Duration panics on overflow; an enormous
        // deadline_ms must degrade to "no deadline", not take down the
        // worker (or, unguarded, the connection).
        let ctx = ctx_with_figure1();
        let r = run(
            &ctx,
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1"],"budget":10,"deadline_ms":1000000000000000000}}"#,
        )
        .unwrap();
        assert_eq!(r.get("feasible").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn expired_deadline_maps_to_deadline_exceeded() {
        let ctx = ctx_with_figure1();
        let err = run(
            &ctx,
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"deadline_ms":0}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let ctx = ServerContext::new(1, 1);
        ctx.registry.insert(Dataset::from_graph("fig1", figure1()));
        // Pretend the request arrived long ago: the 1 ms default deadline
        // has passed by the time the search starts.
        let req = parse_request(
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10}}"#,
        )
        .unwrap();
        let long_ago = Instant::now()
            .checked_sub(Duration::from_secs(1))
            .expect("monotonic clock is past 1s");
        let err = handle(&ctx, &req, long_ago).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
    }

    #[test]
    fn shutdown_sets_the_latch() {
        let ctx = ctx_with_figure1();
        assert!(!ctx.shutdown.load(Ordering::SeqCst));
        let r = run(&ctx, r#"{"method":"shutdown"}"#).unwrap();
        assert_eq!(r.get("stopping").and_then(JsonValue::as_bool), Some(true));
        assert!(ctx.shutdown.load(Ordering::SeqCst));
    }

    #[test]
    fn stats_reports_graph_shape() {
        let ctx = ctx_with_figure1();
        run(
            &ctx,
            r#"{"method":"query","params":{"from":0,"to":7,"budget":10,"algo":"greedy"}}"#,
        )
        .unwrap();
        let r = run(&ctx, r#"{"method":"stats"}"#).unwrap();
        let ds = &r.get("datasets").unwrap().as_arr().unwrap()[0];
        assert_eq!(ds.get("name").and_then(JsonValue::as_str), Some("fig1"));
        assert_eq!(ds.get("nodes").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(
            ds.get("queries_served").and_then(JsonValue::as_u64),
            Some(1)
        );
        // The named-dataset filter returns the same entry.
        let one = run(&ctx, r#"{"method":"stats","params":{"dataset":"fig1"}}"#).unwrap();
        assert_eq!(one.get("datasets").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn stats_reports_preprocess_cache_counters() {
        let ctx = ctx_with_figure1();
        let query =
            r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10}}"#;
        run(&ctx, query).unwrap();
        run(&ctx, query).unwrap();
        let r = run(&ctx, r#"{"method":"stats"}"#).unwrap();
        let prep = r.get("datasets").unwrap().as_arr().unwrap()[0]
            .get("prep_cache")
            .expect("prep_cache object");
        // First query misses and builds the v7 context; the repeat hits.
        assert_eq!(prep.get("ctx_misses").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(prep.get("ctx_hits").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(prep.get("contexts").and_then(JsonValue::as_u64), Some(1));
        assert!(prep.get("trees_built").and_then(JsonValue::as_u64) >= Some(2));
        assert!(prep.get("hit_rate").and_then(JsonValue::as_f64) > Some(0.0));
    }

    #[test]
    fn load_dataset_round_trips_a_saved_graph() {
        let dir = std::env::temp_dir().join(format!("kor-serve-handler-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.korg");
        kor_data::save_graph(&path, &figure1()).unwrap();

        let ctx = ServerContext::new(1, 0);
        let line = format!(
            r#"{{"method":"load_dataset","params":{{"path":{}}}}}"#,
            JsonValue::from(path.to_str().unwrap()).render()
        );
        let r = run(&ctx, &line).unwrap();
        assert_eq!(r.get("name").and_then(JsonValue::as_str), Some("fig1"));
        assert_eq!(r.get("nodes").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(r.get("replaced").and_then(JsonValue::as_bool), Some(false));
        // Loading again under the same (derived) name replaces.
        let r2 = run(&ctx, &line).unwrap();
        assert_eq!(r2.get("replaced").and_then(JsonValue::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
