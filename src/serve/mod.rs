//! `kor serve` — a concurrent TCP query service over warm engines.
//!
//! The paper frames KOR as an interactive query ("identify a preferable
//! route" for a traveler), but one-shot CLI runs rebuild the graph,
//! inverted index (§3.1), and pre-processing for every question. This
//! module keeps them warm: datasets are loaded once into a
//! [`registry::Registry`], each with one shared
//! [`kor_core::KorEngine`], and a fixed pool of worker threads answers
//! requests against them over plain TCP.
//!
//! Two I/O layers speak the same protocol (selectable via
//! [`ServeConfig::io`]): the default [`IoMode::Event`] layer
//! multiplexes every connection through one readiness-driven reactor
//! thread (`event`), supporting keep-alive and pipelining with
//! per-request overload backpressure, while [`IoMode::Blocking`]
//! (`pool`) parks one worker per connection — kept as the comparison
//! baseline `kor loadtest` measures against.
//!
//! The wire protocol is newline-delimited JSON — one request object per
//! line, one response per line, in order. Supported methods: `query`
//! (algorithm selectable: `os-scaling`, `bucket-bound`, `exact`,
//! `greedy`, with top-k variants), `load_dataset`, `stats`, `health`,
//! and `shutdown`, with per-request deadlines and structured error
//! responses. The full contract, including a live transcript, is in
//! `docs/PROTOCOL.md`; everything here is `std`-only (the environment
//! vendors no async runtime, and this workload — CPU-bound searches on
//! a bounded pool — does not miss one).
//!
//! # Example
//!
//! Start a server on an ephemeral port, ask it the paper's Example 2
//! query, and shut it down:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! use kor::serve::registry::Dataset;
//! use kor::serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     threads: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! server
//!     .registry()
//!     .insert(Dataset::from_graph("fig1", kor::graph::fixtures::figure1()));
//! let addr = server.local_addr();
//! let handle = server.start();
//!
//! let mut conn = TcpStream::connect(addr).unwrap();
//! conn.write_all(
//!     b"{\"id\":1,\"method\":\"query\",\"params\":\
//!       {\"from\":0,\"to\":7,\"keywords\":[\"t1\",\"t2\"],\"budget\":10}}\n",
//! )
//! .unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap())
//!     .read_line(&mut line)
//!     .unwrap();
//! assert!(line.contains("\"ok\":true"), "{line}");
//! assert!(line.contains("\"objective\":6"), "{line}");
//! handle.shutdown();
//! ```

mod event;
mod handler;
mod pool;
pub mod protocol;
pub mod recovery;
pub mod registry;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use handler::ServerContext;
use pool::{ConnQueue, PushRefused, QUEUE_DEPTH_PER_WORKER};
use registry::Registry;

/// Which I/O layer carries bytes between sockets and the worker pool.
///
/// Both layers speak the identical wire protocol — the e2e suites prove
/// responses byte-identical between them — but they scale differently:
/// [`IoMode::Event`] multiplexes every connection through one reactor
/// thread, so workers only ever run requests and idle keep-alive
/// connections cost nothing; [`IoMode::Blocking`] parks one worker per
/// connection for its whole lifetime. Blocking is kept as the
/// comparison baseline `kor loadtest` measures against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Readiness-driven: one non-blocking reactor thread owns all
    /// sockets; workers handle individual requests. The default.
    Event,
    /// One worker thread per in-flight connection (the pre-event
    /// implementation); excess connections wait in an accept queue.
    Blocking,
}

impl IoMode {
    /// The CLI / stats spelling: `event` or `blocking`.
    pub fn as_str(self) -> &'static str {
        match self {
            IoMode::Event => "event",
            IoMode::Blocking => "blocking",
        }
    }
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<IoMode, String> {
        match s {
            "event" => Ok(IoMode::Event),
            "blocking" => Ok(IoMode::Blocking),
            other => Err(format!(
                "unknown io mode {other:?} (expected event or blocking)"
            )),
        }
    }
}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`; port `0` picks an
    /// ephemeral port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker pool size; `0` means one worker per available core. In
    /// blocking mode this also bounds the number of concurrently
    /// served connections; in event mode it bounds concurrently
    /// *executing* requests only.
    pub threads: usize,
    /// I/O layer; see [`IoMode`].
    pub io: IoMode,
    /// Backpressure-queue capacity — waiting request lines (event
    /// mode) or waiting connections (blocking mode) past which the
    /// server answers `overloaded`. `0` means auto: `threads × 16` in
    /// event mode, `threads × 4` in blocking mode.
    pub queue_capacity: usize,
    /// Deadline in milliseconds applied to `query` requests that carry
    /// no `deadline_ms` of their own; `0` means unlimited.
    pub default_deadline_ms: u64,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with a `request_too_large` error and the connection is closed.
    pub max_request_bytes: usize,
    /// Directory for per-dataset write-ahead mutation journals (and
    /// their checkpoints). When set, `update_edges` batches are made
    /// durable before they are applied, and dataset loads replay any
    /// surviving journal — see `docs/OPERATIONS.md`. `None` (the
    /// default) serves purely in memory.
    pub journal: Option<PathBuf>,
}

impl Default for ServeConfig {
    /// Localhost port 7878, event I/O, auto-sized pool and queue, no
    /// default deadline, 1 MiB request cap.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            io: IoMode::Event,
            queue_capacity: 0,
            default_deadline_ms: 0,
            max_request_bytes: 1 << 20,
            journal: None,
        }
    }
}

/// A bound (but not yet serving) server: the listener socket exists, so
/// [`Server::local_addr`] is final, and datasets can be preloaded via
/// [`Server::registry`] before the first connection is accepted.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
}

impl Server {
    /// Binds the listen socket and prepares the shared state.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let mut ctx = ServerContext::new(threads, config.default_deadline_ms);
        ctx.max_request_bytes = config.max_request_bytes;
        ctx.io = config.io;
        ctx.journal_dir = config.journal;
        ctx.queue_capacity = if config.queue_capacity > 0 {
            config.queue_capacity
        } else {
            match config.io {
                // Event workers turn over per request, not per
                // connection, so the queue can afford to be deeper
                // before a queued request waits unreasonably long.
                IoMode::Event => threads * 16,
                IoMode::Blocking => threads * QUEUE_DEPTH_PER_WORKER,
            }
        };
        Ok(Server {
            listener,
            addr,
            ctx: Arc::new(ctx),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dataset registry, for preloading datasets before
    /// [`Server::start`] (requests can also load them later via the
    /// `load_dataset` method).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// Loads — or, when journaling is configured, *recovers* — the
    /// dataset at `path` and registers it under `name`: exactly what a
    /// `load_dataset` request does, exposed for CLI preloading before
    /// [`Server::start`]. With a journal directory set, any surviving
    /// journal for `name` is replayed over the file (or its newest
    /// checkpoint) and the result reported; without one this is
    /// [`registry::Dataset::load`] plus an insert.
    pub fn attach_dataset(
        &self,
        name: &str,
        path: &Path,
    ) -> Result<Option<recovery::RecoveryInfo>, String> {
        let _guard = self.ctx.registry.mutation_guard();
        match &self.ctx.journal_dir {
            Some(dir) => {
                let (dataset, state) = recovery::attach(dir, name, path)?;
                let info = state.recovered;
                self.ctx
                    .journals
                    .lock()
                    .unwrap()
                    .insert(name.to_string(), state);
                self.ctx.registry.insert(dataset);
                Ok(Some(info))
            }
            None => {
                self.ctx
                    .registry
                    .insert(registry::Dataset::load(name, path)?);
                Ok(None)
            }
        }
    }

    /// Spawns the I/O and worker threads and returns a handle for
    /// shutdown/join.
    pub fn start(self) -> ServerHandle {
        match self.ctx.io {
            IoMode::Event => self.start_event(),
            IoMode::Blocking => self.start_blocking(),
        }
    }

    /// Event mode: one reactor thread multiplexes every socket; workers
    /// execute individual requests from a bounded job queue.
    fn start_event(self) -> ServerHandle {
        let queue = Arc::new(event::JobQueue::new(self.ctx.queue_capacity));
        let bus = Arc::new(event::CompletionBus::new());
        let mut workers = Vec::with_capacity(self.ctx.threads);
        for _ in 0..self.ctx.threads {
            let queue = Arc::clone(&queue);
            let bus = Arc::clone(&bus);
            let ctx = Arc::clone(&self.ctx);
            workers.push(std::thread::spawn(move || {
                event::worker_loop(&queue, &bus, &ctx)
            }));
        }
        let ctx = Arc::clone(&self.ctx);
        let listener = self.listener;
        let reactor_thread = std::thread::spawn(move || event::run(listener, ctx, queue, bus));
        ServerHandle {
            addr: self.addr,
            ctx: self.ctx,
            workers,
            listener_thread: reactor_thread,
        }
    }

    /// Blocking mode: the listener queues whole connections; each
    /// worker serves one connection to completion.
    fn start_blocking(self) -> ServerHandle {
        let queue = Arc::new(ConnQueue::new(self.ctx.queue_capacity));
        let mut workers = Vec::with_capacity(self.ctx.threads);
        for _ in 0..self.ctx.threads {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&self.ctx);
            workers.push(std::thread::spawn(move || pool::worker_loop(&queue, &ctx)));
        }
        let ctx = Arc::clone(&self.ctx);
        let listener = self.listener;
        let accept_queue = Arc::clone(&queue);
        let listener_thread = std::thread::spawn(move || {
            // Non-blocking accept with a short poll keeps the loop
            // responsive to the shutdown latch without a self-connect
            // dance; pending connections are drained before sleeping.
            let _ = listener.set_nonblocking(true);
            loop {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        ctx.connections.fetch_add(1, Ordering::Relaxed);
                        // Count before the push: the push wakes a
                        // worker whose matching decrement must not be
                        // able to outrun this increment.
                        ctx.open_connections.fetch_add(1, Ordering::Relaxed);
                        ctx.queued_requests.fetch_add(1, Ordering::Relaxed);
                        match accept_queue.push(stream) {
                            Ok(()) => {}
                            // Backpressure: every worker is busy and
                            // the wait queue is at capacity. Tell the
                            // client and hang up instead of letting
                            // open fds (and client patience) grow
                            // without bound.
                            Err(PushRefused::Full(mut stream)) => {
                                ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
                                ctx.queued_requests.fetch_sub(1, Ordering::Relaxed);
                                ctx.overloaded.fetch_add(1, Ordering::Relaxed);
                                let err = protocol::WireError::new(
                                    protocol::ErrorCode::Overloaded,
                                    "all workers busy and the connection queue is full; \
                                     retry later",
                                );
                                let line =
                                    protocol::error_response(&crate::json::JsonValue::Null, &err);
                                // Dropping a socket with unread client
                                // data pending turns the close into an
                                // RST, which would discard this
                                // response before the client reads it.
                                // Half-close, then briefly drain what
                                // the client already sent (typically
                                // one pipelined request line) so the
                                // line is delivered over an orderly
                                // FIN. Delivery is best-effort: the
                                // drain is hard-bounded because it runs
                                // on the listener thread, so a peer
                                // that trickles bytes stalls accepts
                                // ~100 ms at most, and one that
                                // pipelines more than the drain budget
                                // may still see a reset — acceptable
                                // for a path that only exists when the
                                // server is already saturated (slower
                                // accepts ARE the backpressure).
                                if pool::write_line(&mut stream, &line).is_ok() {
                                    use std::io::Read;
                                    let _ = stream.shutdown(std::net::Shutdown::Write);
                                    let _ =
                                        stream.set_read_timeout(Some(Duration::from_millis(25)));
                                    let mut sink = [0u8; 4096];
                                    for _ in 0..4 {
                                        match stream.read(&mut sink) {
                                            Ok(0) | Err(_) => break,
                                            Ok(_) => {}
                                        }
                                    }
                                }
                            }
                            Err(PushRefused::Closed) => {
                                ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
                                ctx.queued_requests.fetch_sub(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    // Back off on any error: WouldBlock is the idle
                    // case, but persistent failures (e.g. EMFILE when
                    // the fd limit is hit under a connection burst)
                    // must not hot-spin the listener against the
                    // workers it is feeding.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            accept_queue.close();
        });
        ServerHandle {
            addr: self.addr,
            ctx: self.ctx,
            workers,
            listener_thread,
        }
    }

    /// Convenience for the CLI: start and serve until a `shutdown`
    /// request arrives.
    pub fn run(self) {
        self.start().join();
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
    workers: Vec<JoinHandle<()>>,
    listener_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the listener and every worker to
    /// finish. Connections already being served run to completion
    /// (their clients must close for workers to finish).
    pub fn shutdown(self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Waits until the server stops — either via [`ServerHandle`] (from
    /// another thread: [`ServerHandle::shutdown`]) or a `shutdown`
    /// request over the wire.
    pub fn join(self) {
        let _ = self.listener_thread.join();
        for w in self.workers {
            let _ = w.join();
        }
        // Last act of a graceful stop: every journal fsynced. Appends
        // already sync record by record, so this only matters for
        // surfacing late errors — but a drain that loses acknowledged
        // batches would be a lie, so be explicit.
        self.ctx.sync_journals();
    }
}

#[cfg(test)]
mod tests {
    use super::registry::Dataset;
    use super::*;
    use crate::json::JsonValue;
    use kor_graph::fixtures::figure1;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn fixture_server_mode(threads: usize, io: IoMode) -> (SocketAddr, ServerHandle) {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            io,
            ..ServeConfig::default()
        })
        .unwrap();
        server
            .registry()
            .insert(Dataset::from_graph("fig1", figure1()));
        let addr = server.local_addr();
        (addr, server.start())
    }

    fn fixture_server(threads: usize) -> (SocketAddr, ServerHandle) {
        fixture_server_mode(threads, IoMode::Event)
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut out = Vec::new();
        for line in lines {
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(resp.trim_end().to_string());
        }
        out
    }

    #[test]
    fn concurrent_identical_queries_get_identical_bytes() {
        // Across threads AND across I/O modes: the event rewrite must
        // not change a single response byte.
        let mut per_mode = Vec::new();
        for io in [IoMode::Event, IoMode::Blocking] {
            let (addr, handle) = fixture_server_mode(3, io);
            let line = r#"{"id":9,"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;
            let mut threads = Vec::new();
            for _ in 0..8 {
                threads.push(std::thread::spawn(move || {
                    roundtrip(addr, &[line]).remove(0)
                }));
            }
            let responses: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
            for r in &responses {
                assert_eq!(r, &responses[0], "responses must be byte-identical");
            }
            let parsed = JsonValue::parse(&responses[0]).unwrap();
            assert_eq!(parsed.get("ok").and_then(JsonValue::as_bool), Some(true));
            handle.shutdown();
            per_mode.push(responses[0].clone());
        }
        assert_eq!(per_mode[0], per_mode[1], "event vs blocking bytes");
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        for io in [IoMode::Event, IoMode::Blocking] {
            let (addr, handle) = fixture_server_mode(1, io);
            let responses = roundtrip(
                addr,
                &[
                    r#"{"id":1,"method":"health"}"#,
                    r#"{"id":2,"method":"stats"}"#,
                    "garbage",
                    r#"{"id":4,"method":"query","params":{"from":0,"to":7,"budget":10}}"#,
                ],
            );
            assert!(responses[0].starts_with(r#"{"id":1,"ok":true"#));
            assert!(responses[1].starts_with(r#"{"id":2,"ok":true"#));
            assert!(responses[2].contains("parse_error"));
            assert!(responses[3].starts_with(r#"{"id":4,"ok":true"#));
            handle.shutdown();
        }
    }

    #[test]
    fn deeply_nested_request_is_an_error_not_a_crash() {
        // ~100 KB of '[' fits under the 1 MiB request cap but would
        // overflow a worker stack if the JSON parser recursed per
        // bracket — and a stack overflow aborts the whole process, past
        // any unwind guard. The server must answer parse_error and keep
        // serving.
        let (addr, handle) = fixture_server(1);
        let bomb = "[".repeat(100_000);
        let responses = roundtrip(addr, &[&bomb, r#"{"id":2,"method":"health"}"#]);
        assert!(responses[0].contains("parse_error"), "{}", responses[0]);
        assert!(
            responses[0].contains("nesting too deep"),
            "{}",
            responses[0]
        );
        assert!(responses[1].starts_with(r#"{"id":2,"ok":true"#));
        handle.shutdown();
    }

    #[test]
    fn oversized_request_is_rejected_and_connection_closed() {
        for io in [IoMode::Event, IoMode::Blocking] {
            let server = Server::bind(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: 1,
                io,
                max_request_bytes: 64,
                ..ServeConfig::default()
            })
            .unwrap();
            let addr = server.local_addr();
            let handle = server.start();

            let mut conn = TcpStream::connect(addr).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let big = format!("{{\"method\":\"health\",\"id\":\"{}\"}}\n", "x".repeat(200));
            conn.write_all(big.as_bytes()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            assert!(resp.contains("request_too_large"), "{resp}");
            // The server hangs up after the error.
            let mut next = String::new();
            assert_eq!(reader.read_line(&mut next).unwrap(), 0);
            handle.shutdown();
        }
    }

    #[test]
    fn connection_burst_past_queue_capacity_gets_overloaded() {
        // Connection-level overload is the *blocking* layer's contract;
        // the event layer keeps connections and answers per-request
        // `overloaded` instead (tests/serve_overload.rs).
        let (addr, handle) = fixture_server_mode(1, IoMode::Blocking);
        // Occupy the single worker: a completed round trip proves it
        // has popped this connection and is now serving it.
        let busy = TcpStream::connect(addr).unwrap();
        {
            let mut conn = busy.try_clone().unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            conn.write_all(b"{\"method\":\"health\"}\n").unwrap();
            let mut resp = String::new();
            BufReader::new(conn).read_line(&mut resp).unwrap();
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
        // Fill the wait queue (QUEUE_DEPTH_PER_WORKER per worker)...
        let queued: Vec<TcpStream> = (0..QUEUE_DEPTH_PER_WORKER)
            .map(|_| TcpStream::connect(addr).unwrap())
            .collect();
        // ...then one more: the listener must answer `overloaded` and
        // hang up rather than queue it indefinitely. This client uses
        // the realistic write-then-read pattern: its unread request
        // must not turn the server's close into an RST that discards
        // the overloaded response.
        let mut extra = TcpStream::connect(addr).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        extra.write_all(b"{\"method\":\"health\"}\n").unwrap();
        let mut reader = BufReader::new(extra);
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"overloaded\""), "{resp}");
        let mut next = String::new();
        assert_eq!(reader.read_line(&mut next).unwrap(), 0, "then hangs up");
        drop(queued);
        drop(busy);
        handle.shutdown();
    }

    #[test]
    fn shutdown_request_terminates_join() {
        for io in [IoMode::Event, IoMode::Blocking] {
            let (addr, handle) = fixture_server_mode(2, io);
            let responses = roundtrip(addr, &[r#"{"id":"bye","method":"shutdown"}"#]);
            assert!(
                responses[0].contains("\"stopping\":true"),
                "{}",
                responses[0]
            );
            // join() returns because the wire request tripped the latch.
            handle.join();
        }
    }

    #[test]
    fn stats_reports_server_io_section() {
        for io in [IoMode::Event, IoMode::Blocking] {
            let (addr, handle) = fixture_server_mode(2, io);
            let responses = roundtrip(addr, &[r#"{"id":1,"method":"stats"}"#]);
            let parsed = JsonValue::parse(&responses[0]).unwrap();
            let server = parsed
                .get("result")
                .and_then(|r| r.get("server"))
                .expect("server section");
            assert_eq!(
                server.get("io").and_then(JsonValue::as_str),
                Some(io.as_str())
            );
            // This connection is open and its stats request is being
            // handled right now (not queued).
            assert_eq!(
                server.get("open_connections").and_then(JsonValue::as_u64),
                Some(1)
            );
            assert_eq!(
                server.get("queued_requests").and_then(JsonValue::as_u64),
                Some(0)
            );
            assert_eq!(
                server.get("overloaded").and_then(JsonValue::as_u64),
                Some(0)
            );
            assert!(server.get("queue_capacity").and_then(JsonValue::as_u64) > Some(0));
            handle.shutdown();
        }
    }
}
