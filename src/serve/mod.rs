//! `kor serve` — a concurrent TCP query service over warm engines.
//!
//! The paper frames KOR as an interactive query ("identify a preferable
//! route" for a traveler), but one-shot CLI runs rebuild the graph,
//! inverted index (§3.1), and pre-processing for every question. This
//! module keeps them warm: datasets are loaded once into a
//! [`registry::Registry`], each with one shared
//! [`kor_core::KorEngine`], and a fixed pool of worker threads answers
//! requests against them over plain TCP.
//!
//! The wire protocol is newline-delimited JSON — one request object per
//! line, one response per line, in order. Supported methods: `query`
//! (algorithm selectable: `os-scaling`, `bucket-bound`, `exact`,
//! `greedy`, with top-k variants), `load_dataset`, `stats`, `health`,
//! and `shutdown`, with per-request deadlines and structured error
//! responses. The full contract, including a live transcript, is in
//! `docs/PROTOCOL.md`; everything here is `std`-only (the environment
//! vendors no async runtime, and this workload — CPU-bound searches on
//! a bounded pool — does not miss one).
//!
//! # Example
//!
//! Start a server on an ephemeral port, ask it the paper's Example 2
//! query, and shut it down:
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//!
//! use kor::serve::registry::Dataset;
//! use kor::serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     threads: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! server
//!     .registry()
//!     .insert(Dataset::from_graph("fig1", kor::graph::fixtures::figure1()));
//! let addr = server.local_addr();
//! let handle = server.start();
//!
//! let mut conn = TcpStream::connect(addr).unwrap();
//! conn.write_all(
//!     b"{\"id\":1,\"method\":\"query\",\"params\":\
//!       {\"from\":0,\"to\":7,\"keywords\":[\"t1\",\"t2\"],\"budget\":10}}\n",
//! )
//! .unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap())
//!     .read_line(&mut line)
//!     .unwrap();
//! assert!(line.contains("\"ok\":true"), "{line}");
//! assert!(line.contains("\"objective\":6"), "{line}");
//! handle.shutdown();
//! ```

mod handler;
mod pool;
pub mod protocol;
pub mod registry;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use handler::ServerContext;
use pool::ConnQueue;
use registry::Registry;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`; port `0` picks an
    /// ephemeral port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker pool size (also the concurrent-connection bound);
    /// `0` means one worker per available core.
    pub threads: usize,
    /// Deadline in milliseconds applied to `query` requests that carry
    /// no `deadline_ms` of their own; `0` means unlimited.
    pub default_deadline_ms: u64,
    /// Maximum request-line length in bytes; longer lines are answered
    /// with a `request_too_large` error and the connection is closed.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    /// Localhost port 7878, auto-sized pool, no default deadline,
    /// 1 MiB request cap.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            threads: 0,
            default_deadline_ms: 0,
            max_request_bytes: 1 << 20,
        }
    }
}

/// A bound (but not yet serving) server: the listener socket exists, so
/// [`Server::local_addr`] is final, and datasets can be preloaded via
/// [`Server::registry`] before the first connection is accepted.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
}

impl Server {
    /// Binds the listen socket and prepares the shared state.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let mut ctx = ServerContext::new(threads, config.default_deadline_ms);
        ctx.max_request_bytes = config.max_request_bytes;
        Ok(Server {
            listener,
            addr,
            ctx: Arc::new(ctx),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dataset registry, for preloading datasets before
    /// [`Server::start`] (requests can also load them later via the
    /// `load_dataset` method).
    pub fn registry(&self) -> &Registry {
        &self.ctx.registry
    }

    /// Spawns the listener and worker threads and returns a handle for
    /// shutdown/join.
    pub fn start(self) -> ServerHandle {
        let queue = Arc::new(ConnQueue::new());
        let mut workers = Vec::with_capacity(self.ctx.threads);
        for _ in 0..self.ctx.threads {
            let queue = Arc::clone(&queue);
            let ctx = Arc::clone(&self.ctx);
            workers.push(std::thread::spawn(move || pool::worker_loop(&queue, &ctx)));
        }
        let ctx = Arc::clone(&self.ctx);
        let listener = self.listener;
        let accept_queue = Arc::clone(&queue);
        let listener_thread = std::thread::spawn(move || {
            // Non-blocking accept with a short poll keeps the loop
            // responsive to the shutdown latch without a self-connect
            // dance; pending connections are drained before sleeping.
            let _ = listener.set_nonblocking(true);
            loop {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        ctx.connections.fetch_add(1, Ordering::Relaxed);
                        if !accept_queue.push(stream) {
                            break;
                        }
                    }
                    // Back off on any error: WouldBlock is the idle
                    // case, but persistent failures (e.g. EMFILE when
                    // the fd limit is hit under a connection burst)
                    // must not hot-spin the listener against the
                    // workers it is feeding.
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            accept_queue.close();
        });
        ServerHandle {
            addr: self.addr,
            ctx: self.ctx,
            workers,
            listener_thread,
        }
    }

    /// Convenience for the CLI: start and serve until a `shutdown`
    /// request arrives.
    pub fn run(self) {
        self.start().join();
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
    workers: Vec<JoinHandle<()>>,
    listener_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the listener and every worker to
    /// finish. Connections already being served run to completion
    /// (their clients must close for workers to finish).
    pub fn shutdown(self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Waits until the server stops — either via [`ServerHandle`] (from
    /// another thread: [`ServerHandle::shutdown`]) or a `shutdown`
    /// request over the wire.
    pub fn join(self) {
        let _ = self.listener_thread.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::registry::Dataset;
    use super::*;
    use crate::json::JsonValue;
    use kor_graph::fixtures::figure1;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn fixture_server(threads: usize) -> (SocketAddr, ServerHandle) {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            ..ServeConfig::default()
        })
        .unwrap();
        server
            .registry()
            .insert(Dataset::from_graph("fig1", figure1()));
        let addr = server.local_addr();
        (addr, server.start())
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut out = Vec::new();
        for line in lines {
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(resp.trim_end().to_string());
        }
        out
    }

    #[test]
    fn concurrent_identical_queries_get_identical_bytes() {
        let (addr, handle) = fixture_server(3);
        let line = r#"{"id":9,"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;
        let mut threads = Vec::new();
        for _ in 0..8 {
            threads.push(std::thread::spawn(move || {
                roundtrip(addr, &[line]).remove(0)
            }));
        }
        let responses: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        for r in &responses {
            assert_eq!(r, &responses[0], "responses must be byte-identical");
        }
        let parsed = JsonValue::parse(&responses[0]).unwrap();
        assert_eq!(parsed.get("ok").and_then(JsonValue::as_bool), Some(true));
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let (addr, handle) = fixture_server(1);
        let responses = roundtrip(
            addr,
            &[
                r#"{"id":1,"method":"health"}"#,
                r#"{"id":2,"method":"stats"}"#,
                "garbage",
                r#"{"id":4,"method":"query","params":{"from":0,"to":7,"budget":10}}"#,
            ],
        );
        assert!(responses[0].starts_with(r#"{"id":1,"ok":true"#));
        assert!(responses[1].starts_with(r#"{"id":2,"ok":true"#));
        assert!(responses[2].contains("parse_error"));
        assert!(responses[3].starts_with(r#"{"id":4,"ok":true"#));
        handle.shutdown();
    }

    #[test]
    fn oversized_request_is_rejected_and_connection_closed() {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            max_request_bytes: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.start();

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let big = format!("{{\"method\":\"health\",\"id\":\"{}\"}}\n", "x".repeat(200));
        conn.write_all(big.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("request_too_large"), "{resp}");
        // The server hangs up after the error.
        let mut next = String::new();
        assert_eq!(reader.read_line(&mut next).unwrap(), 0);
        handle.shutdown();
    }

    #[test]
    fn shutdown_request_terminates_join() {
        let (addr, handle) = fixture_server(2);
        let responses = roundtrip(addr, &[r#"{"id":"bye","method":"shutdown"}"#]);
        assert!(
            responses[0].contains("\"stopping\":true"),
            "{}",
            responses[0]
        );
        // join() returns because the wire request tripped the latch.
        handle.join();
    }
}
