//! Journal-backed dataset attachment: crash recovery on load, and
//! journal seeding for datasets that start journaling mid-life.
//!
//! When the server runs with `--journal DIR`, every dataset owns one
//! `.korj` write-ahead journal in that directory (see
//! `kor_data::journal` and `docs/OPERATIONS.md`). This module is the
//! glue between the registry and the journal:
//!
//! * [`attach`] loads a dataset *through* its journal — it reads the
//!   journal (tolerating a torn tail), resolves the base world (the
//!   newest checkpoint, or the dataset file itself), replays every
//!   durable mutation batch, and hands back a [`Dataset`] that is
//!   bit-identical to the engine the crashed process would have been
//!   serving — plus the journal, open and ready to append.
//! * [`seed`] starts a journal for a dataset that was loaded without
//!   one (journaling enabled after the fact, or a dataset inserted
//!   from memory). It writes a checkpoint of the current world first,
//!   so recovery never depends on how the dataset originally arrived.
//!
//! Both run under the registry's mutation guard when called from the
//! request path, so journal state and registry state replace together.

use std::path::Path;

use kor_data::journal::{graph_digest, journal_path, read_journal, replay, Journal};
use kor_data::Snapshot;

use super::registry::Dataset;

/// What replaying a journal recovered, reported in `load_dataset`
/// responses and `stats`.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryInfo {
    /// Graph epoch after replay (equals the journal's last durable
    /// epoch; the base epoch when the journal held no batches).
    pub epoch: u64,
    /// Mutation batches replayed from the journal.
    pub batches: u64,
}

/// A dataset's live journal plus what its last recovery replayed.
/// Held in the server context keyed by dataset name; replaced
/// atomically with the registry entry under the mutation guard.
#[derive(Debug)]
pub struct JournalState {
    /// The open write-ahead journal for this dataset.
    pub journal: Journal,
    /// What attaching this journal recovered (zeros for a journal that
    /// was freshly created rather than replayed).
    pub recovered: RecoveryInfo,
}

/// Loads the dataset at `path` through its journal in `dir`: replays
/// every durable mutation batch the crashed (or cleanly stopped)
/// previous process journaled, and returns the recovered dataset with
/// its journal open for further appends.
///
/// Resolution order for the base world the journal extends:
///
/// 1. a checkpoint `{name}.{base_epoch}.korbin` in `dir`, if present —
///    the compacted base the journal was restarted from;
/// 2. otherwise the dataset file itself (only valid while the journal's
///    base epoch is 0, i.e. no checkpoint was ever taken).
///
/// A journal whose header digest does not match the resolved base is a
/// hard error, not a silent skip: it means the journal belongs to a
/// different world than the file being loaded, and replaying it would
/// fabricate a graph nobody ever served. The error says which file to
/// delete to start fresh.
pub fn attach(dir: &Path, name: &str, path: &Path) -> Result<(Dataset, JournalState), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
    let jpath = journal_path(dir, name);
    if !jpath.exists() {
        // Fresh attach: no recovery to do, just bind a new journal to
        // this world so the *next* restart has something to replay.
        let snapshot =
            kor_data::read_world_auto(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let digest = graph_digest(&snapshot.graph);
        let epoch = snapshot.graph.epoch();
        let journal = Journal::create(&jpath, epoch, digest)
            .map_err(|e| format!("cannot create journal {}: {e}", jpath.display()))?;
        let dataset = Dataset::from_snapshot(name, snapshot);
        return Ok((
            dataset,
            JournalState {
                journal,
                recovered: RecoveryInfo { epoch, batches: 0 },
            },
        ));
    }

    // Peek at the journal header to learn which base world it extends,
    // then resolve that base: prefer its checkpoint, fall back to the
    // dataset file for a never-compacted journal.
    let peek = read_journal(&jpath).map_err(|e| {
        format!(
            "journal {}: {e} (delete it to start fresh)",
            jpath.display()
        )
    })?;
    let cp = kor_data::checkpoint_path(dir, name, peek.base_epoch);
    let base = if cp.exists() {
        cp
    } else if peek.base_epoch == 0 {
        path.to_path_buf()
    } else {
        return Err(format!(
            "journal {} starts at epoch {} but its checkpoint {} is missing — \
             restore the checkpoint or delete the journal to start fresh from {}",
            jpath.display(),
            peek.base_epoch,
            cp.display(),
            path.display(),
        ));
    };
    let snapshot =
        kor_data::read_world_auto(&base).map_err(|e| format!("{}: {e}", base.display()))?;
    let digest = graph_digest(&snapshot.graph);
    // Re-open for appending; this also truncates any torn tail so the
    // next append extends a clean chain.
    let (journal, recovered) =
        Journal::open(&jpath, digest).map_err(|e| format!("journal {}: {e}", jpath.display()))?;
    let (graph, _applied) = replay(&snapshot.graph, &recovered).map_err(|e| {
        format!(
            "journal {} does not extend {} ({e}) — delete the journal to \
             load the file as-is, discarding journaled mutations",
            jpath.display(),
            base.display(),
        )
    })?;
    // The graph's own epoch, not the replayed-batch count: for a
    // compacted journal the two differ by the checkpoint's base epoch.
    let epoch = graph.epoch();
    // A live server degrades a sharded router to fused-only the moment
    // a batch touches a cut edge, stickily. Recovery must land in the
    // same mode, so re-run that test over every replayed batch.
    let fused_only = match &snapshot.sharding {
        Some(info) => recovered.batches.iter().any(|(_, batch)| {
            batch
                .iter()
                .any(|m| info.assignment[m.from.index()] != info.assignment[m.to.index()])
        }),
        None => false,
    };
    let batches = recovered.batches.len() as u64;
    let dataset = Dataset::from_recovered(name, graph, snapshot.sharding, fused_only);
    Ok((
        dataset,
        JournalState {
            journal,
            recovered: RecoveryInfo { epoch, batches },
        },
    ))
}

/// Starts a journal for a dataset that has none yet (journaling was
/// enabled after the dataset was loaded, or it was inserted from
/// memory and never touched disk). Writes a checkpoint of the current
/// world first, then binds a fresh journal to it — so recovery after
/// this point is self-contained in the journal directory and never
/// needs the original source.
pub fn seed(dir: &Path, dataset: &Dataset) -> Result<JournalState, String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create journal directory {}: {e}", dir.display()))?;
    let graph = dataset.engine().graph().as_ref().clone();
    let epoch = graph.epoch();
    let digest = graph_digest(&graph);
    let world = Snapshot {
        graph,
        query_sets: Vec::new(),
        sharding: dataset.router().map(|r| r.info().clone()),
    };
    let jpath = journal_path(dir, dataset.name());
    let mut journal = Journal::create(&jpath, epoch, digest)
        .map_err(|e| format!("cannot create journal {}: {e}", jpath.display()))?;
    journal
        .checkpoint(dataset.name(), &world)
        .map_err(|e| format!("cannot checkpoint {}: {e}", dataset.name()))?;
    Ok(JournalState {
        journal,
        recovered: RecoveryInfo { epoch, batches: 0 },
    })
}
