//! Wire protocol types: request envelope, response rendering, error
//! codes.
//!
//! The protocol is newline-delimited JSON over TCP — one request object
//! per line, one response object per line, in order. The full contract
//! (every method, every field, deadline semantics, a live transcript)
//! is documented in `docs/PROTOCOL.md`; this module is its executable
//! counterpart.

use crate::json::JsonValue;

/// Machine-readable error classes carried in the `error.code` field of
/// a failure response. Stable strings — clients switch on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    ParseError,
    /// The request envelope or parameters were malformed (missing or
    /// mistyped fields, unknown fields, invalid algorithm parameters,
    /// unknown node ids or keywords).
    BadRequest,
    /// The `method` is not one the server implements.
    UnknownMethod,
    /// The named dataset is not loaded (or no dataset was named and
    /// there is no unambiguous default).
    UnknownDataset,
    /// `load_dataset` could not read or parse the graph file.
    LoadFailed,
    /// The query's deadline passed before the search finished.
    DeadlineExceeded,
    /// The request line exceeded the server's size limit; the
    /// connection is closed after this response.
    RequestTooLarge,
    /// Every worker is busy and the accepted-connection queue is full;
    /// the connection is closed after this response. Retry later,
    /// ideally with backoff.
    Overloaded,
    /// The shard owning the query's source or target is unavailable
    /// (poisoned or lost). Queries owned by other shards keep
    /// answering; the connection stays open.
    ShardUnavailable,
    /// The write-ahead journal append failed; the mutation batch was
    /// NOT applied (the dataset is unchanged) and it is safe to retry.
    JournalError,
    /// The request handler panicked. The faulty request got this
    /// response instead of killing the worker or the connection; the
    /// connection stays usable.
    InternalError,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownMethod => "unknown_method",
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::LoadFailed => "load_failed",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::RequestTooLarge => "request_too_large",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShardUnavailable => "shard_unavailable",
            ErrorCode::JournalError => "journal_error",
            ErrorCode::InternalError => "internal_error",
        }
    }
}

/// A structured failure: the code plus a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail (not meant for matching).
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation value, echoed verbatim in the
    /// response; `null` when absent.
    pub id: JsonValue,
    /// The method name.
    pub method: String,
    /// Method parameters; always an object (empty when absent).
    pub params: JsonValue,
}

/// Parses one request line. The envelope is strict: it must be a JSON
/// object, `method` must be a string, `params` (optional) must be an
/// object, and no other fields are allowed besides `id`.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = JsonValue::parse(line)
        .map_err(|e| WireError::new(ErrorCode::ParseError, format!("invalid JSON: {e}")))?;
    let JsonValue::Obj(ref fields) = value else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    };
    for (key, _) in fields {
        if !matches!(key.as_str(), "id" | "method" | "params") {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown envelope field {key:?}"),
            ));
        }
    }
    let method = match value.get("method") {
        Some(JsonValue::Str(m)) => m.clone(),
        Some(_) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "\"method\" must be a string",
            ))
        }
        None => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "missing \"method\" field",
            ))
        }
    };
    let params = match value.get("params") {
        None => JsonValue::Obj(Vec::new()),
        Some(p @ JsonValue::Obj(_)) => p.clone(),
        Some(_) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "\"params\" must be an object",
            ))
        }
    };
    let id = value.get("id").cloned().unwrap_or(JsonValue::Null);
    Ok(Request { id, method, params })
}

/// Renders a success response line (without the trailing newline).
pub fn ok_response(id: &JsonValue, result: JsonValue) -> String {
    JsonValue::obj([
        ("id", id.clone()),
        ("ok", JsonValue::Bool(true)),
        ("result", result),
    ])
    .render()
}

/// Renders a failure response line (without the trailing newline).
pub fn error_response(id: &JsonValue, error: &WireError) -> String {
    JsonValue::obj([
        ("id", id.clone()),
        ("ok", JsonValue::Bool(false)),
        (
            "error",
            JsonValue::obj([
                ("code", JsonValue::from(error.code.as_str())),
                ("message", JsonValue::from(error.message.clone())),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_envelopes() {
        let r = parse_request(r#"{"method":"health"}"#).unwrap();
        assert_eq!(r.method, "health");
        assert!(r.id.is_null());
        assert_eq!(r.params, JsonValue::Obj(Vec::new()));

        let r = parse_request(r#"{"id":7,"method":"query","params":{"from":0}}"#).unwrap();
        assert_eq!(r.id.as_f64(), Some(7.0));
        assert_eq!(r.params.get("from").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn envelope_is_strict() {
        for (line, code) in [
            ("nonsense", ErrorCode::ParseError),
            ("[1,2]", ErrorCode::BadRequest),
            (r#"{"params":{}}"#, ErrorCode::BadRequest),
            (r#"{"method":3}"#, ErrorCode::BadRequest),
            (r#"{"method":"q","params":[]}"#, ErrorCode::BadRequest),
            (r#"{"method":"q","extra":1}"#, ErrorCode::BadRequest),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "{line}");
        }
    }

    #[test]
    fn responses_render_stable_shapes() {
        let ok = ok_response(
            &JsonValue::from(4_u64),
            JsonValue::obj([("x", 1_u64.into())]),
        );
        assert_eq!(ok, r#"{"id":4,"ok":true,"result":{"x":1}}"#);
        let err = error_response(
            &JsonValue::Null,
            &WireError::new(ErrorCode::UnknownMethod, "no such method"),
        );
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"error":{"code":"unknown_method","message":"no such method"}}"#
        );
    }

    #[test]
    fn error_codes_are_stable() {
        let pairs = [
            (ErrorCode::ParseError, "parse_error"),
            (ErrorCode::BadRequest, "bad_request"),
            (ErrorCode::UnknownMethod, "unknown_method"),
            (ErrorCode::UnknownDataset, "unknown_dataset"),
            (ErrorCode::LoadFailed, "load_failed"),
            (ErrorCode::DeadlineExceeded, "deadline_exceeded"),
            (ErrorCode::RequestTooLarge, "request_too_large"),
            (ErrorCode::Overloaded, "overloaded"),
            (ErrorCode::ShardUnavailable, "shard_unavailable"),
            (ErrorCode::JournalError, "journal_error"),
            (ErrorCode::InternalError, "internal_error"),
        ];
        for (code, s) in pairs {
            assert_eq!(code.as_str(), s);
        }
    }

    #[test]
    fn id_round_trips_any_json_value() {
        for id in [r#""abc""#, "null", "[1,2]", r#"{"a":1}"#, "3.5"] {
            let line = format!(r#"{{"id":{id},"method":"health"}}"#);
            let req = parse_request(&line).unwrap();
            let resp = ok_response(&req.id, JsonValue::Null);
            assert!(resp.starts_with(&format!(r#"{{"id":{id},"#)), "{resp}");
        }
    }
}
