//! The worker pool: a shared connection queue and the per-connection
//! request loop.
//!
//! The server runs a fixed number of worker threads. The listener
//! thread accepts sockets and pushes them onto a bounded
//! `Mutex`+`Condvar` queue; each worker pops one connection and serves
//! it to completion (newline-delimited request/response, in order)
//! before taking the next. The pool size therefore bounds the number
//! of concurrently served connections; excess connections wait in the
//! queue with their requests unread — up to the queue's capacity
//! ([`QUEUE_DEPTH_PER_WORKER`] per worker), past which the listener
//! answers `overloaded` and closes, so a connection burst cannot grow
//! the open-fd count without bound or park clients in a queue that
//! will never reach them.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::json::JsonValue;
use crate::serve::handler::{handle, note_panic, ServerContext};
use crate::serve::protocol::{error_response, ok_response, parse_request, ErrorCode, WireError};

/// Queued connections per worker thread: enough slack to absorb a
/// short burst, small enough that a queued client waits at most a few
/// service times before a worker reaches it.
pub(crate) const QUEUE_DEPTH_PER_WORKER: usize = 4;

/// Why [`ConnQueue::push`] refused a connection.
pub(crate) enum PushRefused {
    /// The queue is at capacity; the stream is handed back so the
    /// listener can answer `overloaded` before closing it.
    Full(TcpStream),
    /// The queue is closed (server shutting down); the stream is
    /// dropped.
    Closed,
}

/// Blocking multi-producer multi-consumer bounded queue of accepted
/// sockets.
pub(crate) struct ConnQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    /// A queue holding at most `capacity` waiting connections.
    pub(crate) fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a connection, or hands it back when the queue is full
    /// (so the listener can signal backpressure) or closed.
    pub(crate) fn push(&self, stream: TcpStream) -> Result<(), PushRefused> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushRefused::Closed);
        }
        if state.conns.len() >= self.capacity {
            return Err(PushRefused::Full(stream));
        }
        state.conns.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// and drained.
    pub(crate) fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(stream) = state.conns.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    /// Closes the queue and wakes every blocked worker. Queued but
    /// unserved connections are still drained and served.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// One worker: serve connections until the queue closes.
pub(crate) fn worker_loop(queue: &ConnQueue, ctx: &ServerContext) {
    while let Some(stream) = queue.pop() {
        ctx.queued_requests.fetch_sub(1, Ordering::Relaxed);
        // IO errors AND panics are per-connection: drop the socket,
        // keep serving. Without the unwind guard, one panicking request
        // would permanently shrink the fixed-size pool.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(stream, ctx)
        }));
        ctx.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Outcome of reading one request line.
enum LineRead {
    /// A full line landed in the caller's buffer.
    Complete,
    /// The peer closed the connection (any partial line is discarded —
    /// a request without its newline was never committed).
    Eof,
    /// The line exceeded the size cap.
    TooLarge,
    /// The read timed out; the partial line stays in the caller's
    /// buffer. The caller checks the shutdown latch and retries.
    TimedOut,
}

/// Reads up to and including the next `\n` into `line`, capped at `max`
/// payload bytes (the newline not counted). `line` accumulates across
/// [`LineRead::TimedOut`] returns so a slow writer loses nothing.
fn read_line(reader: &mut impl BufRead, line: &mut Vec<u8>, max: usize) -> io::Result<LineRead> {
    loop {
        let (found_newline, consumed) = {
            let buf = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineRead::TimedOut)
                }
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Ok(LineRead::Eof);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..pos]);
                    (true, pos + 1)
                }
                None => {
                    line.extend_from_slice(buf);
                    (false, buf.len())
                }
            }
        };
        reader.consume(consumed);
        if line.len() > max {
            return Ok(LineRead::TooLarge);
        }
        if found_newline {
            return Ok(LineRead::Complete);
        }
    }
}

/// How long a blocked read waits before re-checking the shutdown latch.
const READ_POLL: std::time::Duration = std::time::Duration::from_millis(200);

/// Serves one connection to completion: request lines in, response
/// lines out, until EOF, an oversized line, a `shutdown` request, or —
/// for idle connections — server shutdown.
fn serve_connection(mut stream: TcpStream, ctx: &ServerContext) -> io::Result<()> {
    let max = ctx.max_request_bytes;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let line = loop {
            match read_line(&mut reader, &mut buf, max)? {
                LineRead::Eof => return Ok(()),
                LineRead::TimedOut => {
                    if ctx.shutdown.load(Ordering::SeqCst) {
                        return Ok(()); // idle connection during shutdown
                    }
                }
                LineRead::TooLarge => {
                    let err = WireError::new(
                        ErrorCode::RequestTooLarge,
                        format!("request line exceeds {max} bytes"),
                    );
                    write_line(&mut stream, &error_response(&JsonValue::Null, &err))?;
                    return Ok(());
                }
                LineRead::Complete => break std::mem::take(&mut buf),
            }
        };
        let received = Instant::now();
        let text = String::from_utf8_lossy(&line);
        if text.trim().is_empty() {
            continue; // blank lines keep interactive nc sessions pleasant
        }
        ctx.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(text.trim()) {
            Err(e) => error_response(&JsonValue::Null, &e),
            Ok(req) => {
                let shutting_down = req.method == "shutdown";
                // Panic isolation per *request*, matching the event
                // layer: the faulty request gets `internal_error`, the
                // connection (and its pipelined neighbors) lives on.
                // The connection-level guard in `worker_loop` stays as
                // the outer net for panics outside this scope.
                let resp = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle(ctx, &req, received)
                })) {
                    Ok(Ok(result)) => ok_response(&req.id, result),
                    Ok(Err(e)) => error_response(&req.id, &e),
                    Err(_) => error_response(&req.id, &note_panic(ctx)),
                };
                if shutting_down && ctx.shutdown.load(Ordering::SeqCst) {
                    // Acknowledge, then close this connection; the
                    // listener is woken by the caller in mod.rs.
                    write_line(&mut stream, &resp)?;
                    return Ok(());
                }
                resp
            }
        };
        write_line(&mut stream, &response)?;
        // A busy pipelining connection would otherwise never hit the
        // read-timeout latch check and could keep the server alive
        // indefinitely after an acknowledged shutdown.
        if ctx.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Writes one response line (payload + `\n`) and flushes.
pub(crate) fn write_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_line_splits_and_caps() {
        let mut r = BufReader::new(Cursor::new(b"abc\ndefgh\n".to_vec()));
        let mut line = Vec::new();
        assert!(matches!(
            read_line(&mut r, &mut line, 100).unwrap(),
            LineRead::Complete
        ));
        assert_eq!(line, b"abc");
        line.clear();
        assert!(matches!(
            read_line(&mut r, &mut line, 100).unwrap(),
            LineRead::Complete
        ));
        assert_eq!(line, b"defgh");
        line.clear();
        assert!(matches!(
            read_line(&mut r, &mut line, 100).unwrap(),
            LineRead::Eof
        ));

        let mut r = BufReader::new(Cursor::new(b"0123456789\n".to_vec()));
        let mut line = Vec::new();
        assert!(matches!(
            read_line(&mut r, &mut line, 4).unwrap(),
            LineRead::TooLarge
        ));

        // A trailing fragment without its newline was never committed.
        let mut r = BufReader::new(Cursor::new(b"tail".to_vec()));
        let mut line = Vec::new();
        assert!(matches!(
            read_line(&mut r, &mut line, 100).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn queue_drains_then_reports_closed() {
        use std::net::TcpListener;
        let queue = ConnQueue::new(8);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        assert!(queue.push(server_side).is_ok());
        queue.close();
        assert!(queue.pop().is_some(), "queued conn drains after close");
        assert!(queue.pop().is_none(), "then the queue reports closed");
        drop(client);
        // Pushing after close hands the stream back.
        let client2 = TcpStream::connect(addr).unwrap();
        let (server_side2, _) = listener.accept().unwrap();
        assert!(matches!(queue.push(server_side2), Err(PushRefused::Closed)));
        drop(client2);
    }

    #[test]
    fn full_queue_refuses_with_backpressure() {
        use std::net::TcpListener;
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        assert!(queue.push(s1).is_ok());
        let refused = queue.push(s2);
        assert!(matches!(refused, Err(PushRefused::Full(_))));
        // Popping frees a slot; the refused stream can be retried.
        let popped = queue.pop().unwrap();
        let Err(PushRefused::Full(s2)) = refused else {
            unreachable!()
        };
        assert!(queue.push(s2).is_ok());
        drop(popped);
    }

    #[test]
    fn closed_queue_wakes_blocked_workers() {
        let queue = std::sync::Arc::new(ConnQueue::new(8));
        let q2 = std::sync::Arc::clone(&queue);
        let worker = std::thread::spawn(move || q2.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(worker.join().unwrap(), "worker saw the close");
    }
}
