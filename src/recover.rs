//! Offline crash recovery: replay a mutation journal over its base
//! world, prove the result equals the engine that never crashed, and
//! optionally compact the journal into a checkpoint.
//!
//! This is the CLI twin of the recovery `kor serve --journal` performs
//! on startup (see `crate::serve::recovery` and `docs/OPERATIONS.md`),
//! as a standalone tool an operator can run against a journal
//! directory *without* starting a server:
//!
//! * the plain report says what the journal holds — base epoch, durable
//!   batches, torn bytes discarded at the tail;
//! * `--verify` replays the base world's canned queries on two engines
//!   — the **cold** recovered engine (journal replay, fresh caches) and
//!   a **warm** never-crashed twin (the base engine with every batch
//!   applied incrementally, caches carried) — and fails on any answer
//!   digest divergence, the same FNV-1a fold as `kor mutate --verify`;
//! * `--compact` checkpoints the recovered world into the journal
//!   directory and restarts the journal from it, bounding replay time.
//!
//! Without `--compact` the tool is strictly read-only: a torn tail is
//! reported but left in place (the serve-side recovery truncates it on
//! open; an investigator may want the bytes).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use kor_core::KorEngine;
use kor_data::journal::{
    checkpoint_path, graph_digest, journal_path, read_journal, replay, Journal,
};
use kor_data::{sharding_from_assignment, Snapshot};

use crate::batch::BatchAlgo;
use crate::json::JsonValue;
use crate::mutate::replay_digest;

/// Knobs for one [`run_recover`] pass.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// The dataset file the journal extends (used when the journal was
    /// never compacted; afterwards the checkpoint in the journal
    /// directory takes precedence, exactly as serve-side recovery
    /// resolves it).
    pub dataset: PathBuf,
    /// Directory holding the `.korj` journal and its checkpoints.
    pub journal_dir: PathBuf,
    /// Dataset name (journal file stem); defaults to the dataset
    /// file's stem.
    pub name: Option<String>,
    /// Replay canned queries on the recovered engine and a
    /// never-crashed twin; fail on digest divergence.
    pub verify: bool,
    /// Checkpoint the recovered world and restart the journal from it.
    pub compact: bool,
    /// Algorithm for the `--verify` replays.
    pub algo: BatchAlgo,
}

/// What one [`run_recover`] pass found (and did).
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// Dataset / journal name.
    pub name: String,
    /// Epoch of the base world the journal extends.
    pub base_epoch: u64,
    /// Graph epoch after replaying every durable batch.
    pub epoch: u64,
    /// Durable mutation batches replayed.
    pub batches: u64,
    /// Bytes of torn tail after the last durable record (0 for a
    /// cleanly written journal).
    pub torn_bytes: u64,
    /// The matching answer digest, when `--verify` ran.
    pub verified_digest: Option<u64>,
    /// The checkpoint written, when `--compact` ran.
    pub checkpoint: Option<PathBuf>,
}

impl RecoverReport {
    /// Renders the report as JSON (digests as zero-padded hex, like the
    /// batch and mutate summaries).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(&'static str, JsonValue)> = vec![
            ("name", self.name.as_str().into()),
            ("base_epoch", self.base_epoch.into()),
            ("epoch", self.epoch.into()),
            ("batches", self.batches.into()),
            ("torn_bytes", self.torn_bytes.into()),
            ("verified", self.verified_digest.is_some().into()),
        ];
        if let Some(d) = self.verified_digest {
            fields.push(("digest", format!("{d:016x}").into()));
        }
        if let Some(cp) = &self.checkpoint {
            fields.push(("checkpoint", cp.display().to_string().into()));
        }
        JsonValue::obj(fields).render()
    }
}

/// Replays the journal for `config.name` over its base world and
/// reports what it recovered; see the module docs for `--verify` and
/// `--compact`.
pub fn run_recover(config: &RecoverConfig) -> Result<RecoverReport, String> {
    let name = match &config.name {
        Some(n) => n.clone(),
        None => config
            .dataset
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
            .ok_or("cannot derive a dataset name; pass --name")?,
    };
    let jpath = journal_path(&config.journal_dir, &name);
    let recovered =
        read_journal(&jpath).map_err(|e| format!("journal {}: {e}", jpath.display()))?;

    // Base resolution mirrors serve-side recovery: the checkpoint the
    // journal was restarted from wins; the dataset file itself is only
    // a valid base while no checkpoint was ever taken (base epoch 0).
    let cp = checkpoint_path(&config.journal_dir, &name, recovered.base_epoch);
    let base = if cp.exists() {
        cp
    } else if recovered.base_epoch == 0 {
        config.dataset.clone()
    } else {
        return Err(format!(
            "journal {} starts at epoch {} but its checkpoint {} is missing",
            jpath.display(),
            recovered.base_epoch,
            cp.display(),
        ));
    };
    let snapshot =
        kor_data::read_world_auto(&base).map_err(|e| format!("{}: {e}", base.display()))?;
    let (graph, _applied) = replay(&snapshot.graph, &recovered).map_err(|e| {
        format!(
            "journal {} does not extend {}: {e}",
            jpath.display(),
            base.display()
        )
    })?;
    // The graph's own epoch, not the replayed-batch count: for a
    // compacted journal the two differ by the checkpoint's base epoch.
    let epoch = graph.epoch();

    let verified_digest = if config.verify {
        if snapshot.query_count() == 0 {
            return Err(
                "--verify needs canned queries in the base world (generate with \
                 `kor gen`, or can a workload with `kor ingest --per-set`)"
                    .into(),
            );
        }
        // The never-crashed twin: the base engine, queries answered (so
        // caches are warm, exercising incremental invalidation), then
        // every durable batch applied in order — the exact path a live
        // server took before it died.
        let mut warm = KorEngine::new(Arc::new(snapshot.graph.clone()));
        let _ = replay_digest(&warm, &snapshot, config.algo)?;
        for (i, (_, batch)) in recovered.batches.iter().enumerate() {
            let (next, _) = warm
                .apply_edge_mutations(batch)
                .map_err(|e| format!("batch {i}: {e}"))?;
            warm = next;
        }
        let warm_digest = replay_digest(&warm, &snapshot, config.algo)?;
        // The recovered engine: cold rebuild on the replayed graph,
        // exactly what a restarted server serves.
        let cold = KorEngine::new(Arc::new(graph.clone()));
        let cold_digest = replay_digest(&cold, &snapshot, config.algo)?;
        if warm_digest != cold_digest {
            return Err(format!(
                "recovered engine diverges from the never-crashed replay: \
                 cold digest {cold_digest:016x} != warm {warm_digest:016x}"
            ));
        }
        Some(cold_digest)
    } else {
        None
    };

    let checkpoint = if config.compact {
        // Open for real — this truncates any torn tail — and fold the
        // recovered world into a checkpoint the journal restarts from.
        // Canned queries ride along so later `--verify` passes keep
        // working; a sharded layout is re-derived from the base
        // assignment on the recovered graph.
        let digest = graph_digest(&snapshot.graph);
        let (mut journal, _) = Journal::open(&jpath, digest)
            .map_err(|e| format!("journal {}: {e}", jpath.display()))?;
        let sharding = snapshot
            .sharding
            .as_ref()
            .map(|info| sharding_from_assignment(&graph, info.assignment.clone()));
        let world = Snapshot {
            graph: graph.clone(),
            query_sets: snapshot.query_sets.clone(),
            sharding,
        };
        let path = journal
            .checkpoint(&name, &world)
            .map_err(|e| format!("compact: {e}"))?;
        Some(path)
    } else {
        None
    };

    Ok(RecoverReport {
        name,
        base_epoch: recovered.base_epoch,
        epoch,
        batches: recovered.batches.len() as u64,
        torn_bytes: recovered.torn_bytes,
        verified_digest,
        checkpoint,
    })
}

/// Convenience used by the CLI: run and also write the JSON report.
pub fn run_recover_to_file(
    config: &RecoverConfig,
    json_out: Option<&Path>,
) -> Result<RecoverReport, String> {
    let report = run_recover(config)?;
    if let Some(path) = json_out {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_data::journal::Journal;
    use kor_data::{generate_traffic, generate_world, GenConfig, TrafficConfig};

    fn algo() -> BatchAlgo {
        BatchAlgo::BucketBound {
            epsilon: 0.5,
            beta: 1.2,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kor-recover-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Builds a world file plus a journal holding `phases` traffic
    /// batches, as a crashed server would have left them.
    fn journaled_world(dir: &Path, phases: usize) -> (PathBuf, Vec<Vec<kor_graph::EdgeMutation>>) {
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        let path = dir.join("w.korbin");
        kor_data::write_snapshot(&path, &world).unwrap();
        let script = generate_traffic(&world.graph, &TrafficConfig::base(31));
        let script: Vec<_> = script.into_iter().take(phases).collect();
        let jpath = journal_path(dir, "w");
        let mut journal = Journal::create(&jpath, 0, graph_digest(&world.graph)).unwrap();
        for (i, batch) in script.iter().enumerate() {
            journal.append(i as u64 + 1, batch).unwrap();
        }
        (path, script)
    }

    #[test]
    fn recover_reports_and_verifies_a_journal() {
        let dir = temp_dir("verify");
        let (path, script) = journaled_world(&dir, 3);
        let report = run_recover(&RecoverConfig {
            dataset: path,
            journal_dir: dir.clone(),
            name: None,
            verify: true,
            compact: false,
            algo: algo(),
        })
        .unwrap();
        assert_eq!(report.base_epoch, 0);
        assert_eq!(report.epoch, script.len() as u64);
        assert_eq!(report.batches, script.len() as u64);
        assert_eq!(report.torn_bytes, 0);
        assert!(report.verified_digest.is_some());
        assert!(report.checkpoint.is_none());
        let json = report.to_json();
        assert!(json.contains("\"verified\":true"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_checkpoints_and_later_recovery_resumes_from_it() {
        let dir = temp_dir("compact");
        let (path, script) = journaled_world(&dir, 2);
        let cfg = RecoverConfig {
            dataset: path,
            journal_dir: dir.clone(),
            name: None,
            verify: true,
            compact: true,
            algo: algo(),
        };
        let report = run_recover(&cfg).unwrap();
        let cp = report.checkpoint.expect("checkpoint written");
        assert!(cp.exists());
        // A second pass resolves the checkpoint as its base, replays
        // nothing, and still verifies (queries were carried along).
        let again = run_recover(&cfg).unwrap();
        assert_eq!(again.base_epoch, script.len() as u64);
        assert_eq!(again.batches, 0);
        assert!(again.verified_digest.is_some());
        assert_eq!(report.verified_digest, again.verified_digest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_a_clear_error() {
        let dir = temp_dir("missing");
        let err = run_recover(&RecoverConfig {
            dataset: dir.join("nope.korbin"),
            journal_dir: dir.clone(),
            name: None,
            verify: false,
            compact: false,
            algo: algo(),
        })
        .unwrap_err();
        assert!(err.contains("nope.korj"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_journal_is_rejected_not_replayed() {
        // A journal bound to a *different* world must fail the digest
        // check, not fabricate a graph.
        let dir = temp_dir("foreign");
        let other = generate_world(&GenConfig::grid(4, 4, 2));
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        let path = dir.join("w.korbin");
        kor_data::write_snapshot(&path, &world).unwrap();
        let jpath = journal_path(&dir, "w");
        let mut journal = Journal::create(&jpath, 0, graph_digest(&other.graph)).unwrap();
        let script = generate_traffic(&other.graph, &TrafficConfig::base(7));
        journal.append(1, &script[0]).unwrap();
        let err = run_recover(&RecoverConfig {
            dataset: path,
            journal_dir: dir.clone(),
            name: None,
            verify: false,
            compact: false,
            algo: algo(),
        })
        .unwrap_err();
        assert!(err.contains("does not extend"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
