//! Parallel batch execution of KOR query workloads.
//!
//! This is the first scale-oriented layer on top of the paper
//! reproduction: load a dataset once, build the [`KorEngine`] (inverted
//! index + forward-tree cache) once, then answer a whole
//! [`WorkloadConfig`] of KOR queries concurrently and report per-query
//! latencies plus an aggregate JSON summary — the harness every later
//! performance PR benchmarks against.
//!
//! Parallelism is plain `std::thread::scope` with an atomic work queue:
//! the build environment vendors no `rayon`, and self-scheduling workers
//! over a shared `&KorEngine` give the same dynamic load balancing for
//! this shape of work. The engine's `CachedPairCosts` (used by the
//! greedy algorithm) is behind a mutex and is shared by all workers, so
//! forward trees computed for one query are reused by every later query
//! regardless of which thread runs it.
//!
//! ```no_run
//! use kor::batch::{run_batch, BatchAlgo, BatchConfig};
//! use kor::prelude::*;
//!
//! let (graph, _) = generate_flickr(&FlickrConfig::small());
//! let report = run_batch(&graph, &BatchConfig::default());
//! println!("{}", report.to_json());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use kor_core::{
    BucketBoundParams, GreedyParams, KorEngine, KorQuery, OsScalingParams, RouteResult, ScaleAnchor,
};
use kor_data::shard::ShardingInfo;
use kor_data::{generate_workload, CannedQuery, CannedQuerySet, WorkloadConfig};
use kor_graph::Graph;

use crate::json::JsonValue;
use crate::shard::{ShardPlan, ShardRouter};

/// Which algorithm the batch runs for every query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchAlgo {
    /// `OSScaling` (Algorithm 1) with approximation parameter `epsilon`.
    OsScaling {
        /// Approximation parameter `ε ∈ (0, 1)`.
        epsilon: f64,
    },
    /// `BucketBound` (Algorithm 2) with `epsilon` and bucket base `beta`.
    BucketBound {
        /// Approximation parameter `ε ∈ (0, 1)`.
        epsilon: f64,
        /// Bucket geometric base `β > 1`.
        beta: f64,
    },
    /// The α-weighted greedy heuristic (Algorithm 3).
    Greedy {
        /// Objective/budget mixing weight `α ∈ [0, 1]`.
        alpha: f64,
        /// Beam width (1 = Greedy-1, 2 = Greedy-2, …).
        beam: usize,
    },
}

impl BatchAlgo {
    /// Stable name used in output and the JSON summary.
    pub fn name(&self) -> &'static str {
        match self {
            BatchAlgo::OsScaling { .. } => "os-scaling",
            BatchAlgo::BucketBound { .. } => "bucket-bound",
            BatchAlgo::Greedy { .. } => "greedy",
        }
    }
}

/// Full configuration of a batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// The query workload to generate over the dataset. Ignored when
    /// `canned` is set.
    pub workload: WorkloadConfig,
    /// Budget limit `Δ` applied to every generated query. Canned queries
    /// carry their own per-query budgets instead.
    pub delta: f64,
    /// Replay these canned query sets (e.g. from a `.korbin` snapshot)
    /// instead of generating a workload — the exact same queries every
    /// run, with per-query budgets from the snapshot.
    pub canned: Option<Vec<CannedQuerySet>>,
    /// Route queries through a [`ShardRouter`] built from this shard
    /// layout (e.g. a sharded snapshot's `SHRD`/`BNDR` sections):
    /// confinement-proven queries run on their shard's engine, the rest
    /// fan out to the fused engine. Results are byte-identical either
    /// way — only the routing (and [`BatchReport::shard_routing`])
    /// changes.
    pub sharding: Option<ShardingInfo>,
    /// Algorithm (and its parameters) to run.
    pub algo: BatchAlgo,
    /// Worker thread count; `0` means one per available core.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            workload: WorkloadConfig::default(),
            delta: 25.0,
            canned: None,
            sharding: None,
            algo: BatchAlgo::BucketBound {
                epsilon: 0.5,
                beta: 1.2,
            },
            threads: 0,
        }
    }
}

/// Outcome of one query in the batch.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index of the query in submission order (stable across runs).
    pub id: usize,
    /// Index of the query set this query came from (position in
    /// `WorkloadConfig::keyword_counts`; counts may repeat, so this —
    /// not `keyword_count` — identifies the set).
    pub set_index: usize,
    /// Number of query keywords.
    pub keyword_count: usize,
    /// Wall-clock time answering this query.
    pub latency: Duration,
    /// Objective score of the returned route, if feasible.
    pub objective: Option<f64>,
    /// Budget score of the returned route, if feasible.
    pub budget: Option<f64>,
    /// Node ids of the returned route, if feasible (the
    /// [`BatchReport::result_digest`] input).
    pub route: Option<Vec<u32>>,
    /// Error message if the engine rejected the query.
    pub error: Option<String>,
}

impl QueryOutcome {
    /// Whether the query produced a feasible route.
    pub fn is_feasible(&self) -> bool {
        self.objective.is_some()
    }
}

/// Aggregate latency statistics in microseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Fastest query.
    pub min_us: f64,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Slowest query.
    pub max_us: f64,
}

impl LatencyStats {
    fn from_durations(mut us: Vec<f64>) -> Option<Self> {
        if us.is_empty() {
            return None;
        }
        us.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            let rank = (p * (us.len() - 1) as f64).round() as usize;
            us[rank.min(us.len() - 1)]
        };
        Some(LatencyStats {
            min_us: us[0],
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: us[us.len() - 1],
        })
    }
}

/// Per-keyword-count aggregate in the report.
#[derive(Debug, Clone)]
pub struct SetSummary {
    /// Keywords per query in this set.
    pub keyword_count: usize,
    /// Queries executed.
    pub queries: usize,
    /// Queries with a feasible route.
    pub feasible: usize,
    /// Latency aggregate for the set (absent if the set was empty).
    pub latency: Option<LatencyStats>,
}

/// Everything a batch run produced.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Algorithm name (`os-scaling`, `bucket-bound`, `greedy`).
    pub algo: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Budget limit applied to every query.
    pub delta: f64,
    /// Every per-query outcome, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// End-to-end wall time of the parallel section.
    pub wall: Duration,
    /// Per-set aggregates.
    pub per_set: Vec<SetSummary>,
    /// Shard routing totals when the batch replayed through a sharded
    /// layout: `(confined shard-local answers, fused-engine fanouts)`.
    pub shard_routing: Option<(u64, u64)>,
}

impl BatchReport {
    /// Queries with a feasible route.
    pub fn feasible(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_feasible()).count()
    }

    /// Queries the engine rejected outright.
    pub fn errors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }

    /// Aggregate latency over all answered queries. Outcomes the engine
    /// rejected are excluded: construction failures were never timed
    /// (their latency is zero) and would drag the percentiles down.
    pub fn latency(&self) -> Option<LatencyStats> {
        LatencyStats::from_durations(
            self.outcomes
                .iter()
                .filter(|o| o.error.is_none())
                .map(|o| o.latency.as_secs_f64() * 1e6)
                .collect(),
        )
    }

    /// Sustained throughput of the parallel section, queries per second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.wall.as_secs_f64()
    }

    /// Deterministic digest of every query's *answer* — id, feasibility,
    /// objective and budget bits, and route node ids folded FNV-1a style
    /// in submission order. Timing and threading never enter, so two
    /// runs of the same workload on the same dataset — sharded behind
    /// the router or on the single fused engine — must produce equal
    /// digests; the CI shard smoke step diffs exactly this field.
    pub fn result_digest(&self) -> u64 {
        digest_outcomes(&self.outcomes)
    }

    /// Render the summary as a JSON object (via [`crate::json`]; the
    /// environment vendors no `serde_json`).
    pub fn to_json(&self) -> String {
        fn latency_json(l: &LatencyStats) -> JsonValue {
            JsonValue::obj([
                ("min", l.min_us.into()),
                ("mean", l.mean_us.into()),
                ("p50", l.p50_us.into()),
                ("p95", l.p95_us.into()),
                ("p99", l.p99_us.into()),
                ("max", l.max_us.into()),
            ])
        }
        let per_set: Vec<JsonValue> = self
            .per_set
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("keywords", s.keyword_count.into()),
                    ("queries", s.queries.into()),
                    ("feasible", s.feasible.into()),
                    (
                        "latency_us",
                        s.latency.as_ref().map_or(JsonValue::Null, latency_json),
                    ),
                ])
            })
            .collect();
        let mut fields = vec![
            ("algo", JsonValue::from(self.algo.clone())),
            ("delta", self.delta.into()),
            ("threads", self.threads.into()),
            ("queries", self.outcomes.len().into()),
            ("feasible", self.feasible().into()),
            ("errors", self.errors().into()),
            ("wall_ms", (self.wall.as_secs_f64() * 1e3).into()),
            ("throughput_qps", self.throughput_qps().into()),
            (
                "result_digest",
                format!("{:016x}", self.result_digest()).into(),
            ),
        ];
        if let Some((local, fanout)) = self.shard_routing {
            fields.push((
                "shards",
                JsonValue::obj([("local", local.into()), ("fanout", fanout.into())]),
            ));
        }
        if let Some(l) = self.latency() {
            fields.push(("latency_us", latency_json(&l)));
        }
        fields.push(("per_set", JsonValue::Arr(per_set)));
        JsonValue::obj(fields).render()
    }
}

/// The FNV-1a answer digest behind [`BatchReport::result_digest`],
/// usable on any outcome list (the `kor mutate` warm-vs-cold verifier
/// digests canned replays that never pass through a full report).
pub fn digest_outcomes(outcomes: &[QueryOutcome]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for o in outcomes {
        eat(&mut h, o.id as u64);
        match (&o.error, o.objective) {
            (Some(_), _) => eat(&mut h, 2),
            (None, None) => eat(&mut h, 0),
            (None, Some(objective)) => {
                eat(&mut h, 1);
                eat(&mut h, objective.to_bits());
                eat(&mut h, o.budget.unwrap_or(f64::NAN).to_bits());
                let route = o.route.as_deref().unwrap_or(&[]);
                eat(&mut h, route.len() as u64);
                for &node in route {
                    eat(&mut h, u64::from(node));
                }
            }
        }
    }
    h
}

/// Materialized work item: a full KOR query plus bookkeeping.
struct WorkItem {
    id: usize,
    set_index: usize,
    keyword_count: usize,
    query: Result<KorQuery, String>,
}

/// Generate the workload and answer every query in parallel.
///
/// The engine (inverted index + shared `CachedPairCosts`) is built once
/// before the parallel section; workers pull queries off an atomic
/// cursor, so long-running stragglers never idle the other threads.
pub fn run_batch(graph: &Graph, config: &BatchConfig) -> BatchReport {
    let engine = KorEngine::new(graph);
    // When the dataset ships a shard layout, every query routes through
    // the scatter-gather router; the fused engine above stays the
    // gather side for cross-shard queries.
    let router = config
        .sharding
        .as_ref()
        .map(|info| ShardRouter::new(graph, info.clone()));
    // Either replay the canned sets verbatim or generate a workload;
    // either way
    // downstream sees one shape: the generated workload is canned with
    // the shared `delta` as every query's budget.
    let sets: Vec<CannedQuerySet> = match &config.canned {
        Some(canned) => canned.clone(),
        None => generate_workload(graph, engine.index(), &config.workload)
            .into_iter()
            .map(|set| CannedQuerySet {
                keyword_count: set.keyword_count,
                queries: set
                    .queries
                    .into_iter()
                    .map(|spec| CannedQuery {
                        source: spec.source,
                        target: spec.target,
                        keywords: spec.keywords,
                        budget: config.delta,
                    })
                    .collect(),
            })
            .collect(),
    };

    let mut items: Vec<WorkItem> = Vec::new();
    for (set_index, set) in sets.iter().enumerate() {
        for q in &set.queries {
            items.push(WorkItem {
                id: items.len(),
                set_index,
                keyword_count: set.keyword_count,
                query: KorQuery::new(graph, q.source, q.target, q.keywords.clone(), q.budget)
                    .map_err(|e| e.to_string()),
            });
        }
    }

    let threads = if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
    .min(items.len().max(1));

    let cursor = AtomicUsize::new(0);
    let started = Instant::now();
    let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let engine = &engine;
            let router = router.as_ref();
            let items = &items;
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut local: Vec<QueryOutcome> = Vec::new();
                loop {
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(at) else { break };
                    local.push(run_one(engine, router, item, config.algo));
                }
                local
            }));
        }
        for h in handles {
            outcomes.extend(h.join().expect("batch worker panicked"));
        }
    });
    let wall = started.elapsed();
    outcomes.sort_by_key(|o| o.id);

    let per_set = sets
        .iter()
        .enumerate()
        .map(|(set_index, set)| {
            let of_set: Vec<&QueryOutcome> = outcomes
                .iter()
                .filter(|o| o.set_index == set_index)
                .collect();
            SetSummary {
                keyword_count: set.keyword_count,
                queries: of_set.len(),
                feasible: of_set.iter().filter(|o| o.is_feasible()).count(),
                latency: LatencyStats::from_durations(
                    of_set
                        .iter()
                        .filter(|o| o.error.is_none())
                        .map(|o| o.latency.as_secs_f64() * 1e6)
                        .collect(),
                ),
            }
        })
        .collect();

    BatchReport {
        algo: config.algo.name().to_string(),
        threads,
        delta: config.delta,
        outcomes,
        wall,
        per_set,
        shard_routing: router.map(|r| {
            let local: u64 = r.shard_counters().iter().map(|c| c.local_hits).sum();
            (local, r.fanouts())
        }),
    }
}

/// Answer one work item, timing just the engine call. With a router,
/// the query first routes: confined queries run on their shard's engine
/// (anchored), everything else on the fused engine.
fn run_one(
    engine: &KorEngine<&Graph>,
    router: Option<&ShardRouter>,
    item: &WorkItem,
    algo: BatchAlgo,
) -> QueryOutcome {
    let base = QueryOutcome {
        id: item.id,
        set_index: item.set_index,
        keyword_count: item.keyword_count,
        latency: Duration::ZERO,
        objective: None,
        budget: None,
        route: None,
        error: None,
    };
    let query = match &item.query {
        Ok(q) => q,
        Err(e) => {
            return QueryOutcome {
                error: Some(e.clone()),
                ..base
            }
        }
    };
    let plan = match router {
        Some(r) => {
            // Greedy never runs shard-locally: its pair-cost heuristics
            // consult paths that may cross shards.
            let local_capable = !matches!(algo, BatchAlgo::Greedy { .. });
            match r.plan(query.source, query.target, query.budget, local_capable) {
                Ok(p) => p,
                Err(e) => {
                    return QueryOutcome {
                        error: Some(e.to_string()),
                        ..base
                    }
                }
            }
        }
        None => ShardPlan::Fanout,
    };
    let t0 = Instant::now();
    let answered = match (plan, router) {
        (ShardPlan::Local(s), Some(r)) => answer(r.engine(s), query, algo, Some(r.anchor())),
        _ => answer(engine, query, algo, None),
    };
    let latency = t0.elapsed();
    match answered {
        Ok(Some((objective, budget, route))) => QueryOutcome {
            latency,
            objective: Some(objective),
            budget: Some(budget),
            route: Some(route),
            ..base
        },
        Ok(None) => QueryOutcome { latency, ..base },
        Err(e) => QueryOutcome {
            latency,
            error: Some(e),
            ..base
        },
    }
}

/// Run `algo` on whichever engine the routing chose, reducing the
/// answer to `(objective, budget, route node ids)`. Shared with the
/// `kor mutate` replayer, which answers on a warm mutated engine.
pub(crate) fn answer<G: AsRef<Graph>>(
    engine: &KorEngine<G>,
    query: &KorQuery,
    algo: BatchAlgo,
    anchor: Option<ScaleAnchor>,
) -> Result<Option<(f64, f64, Vec<u32>)>, String> {
    fn parts(r: RouteResult) -> (f64, f64, Vec<u32>) {
        let nodes = r.route.nodes().iter().map(|n| n.0).collect();
        (r.objective, r.budget, nodes)
    }
    match algo {
        BatchAlgo::OsScaling { epsilon } => engine
            .os_scaling(
                query,
                &OsScalingParams {
                    anchor,
                    ..OsScalingParams::with_epsilon(epsilon)
                },
            )
            .map(|r| r.route.map(parts))
            .map_err(|e| e.to_string()),
        BatchAlgo::BucketBound { epsilon, beta } => engine
            .bucket_bound(
                query,
                &BucketBoundParams {
                    anchor,
                    ..BucketBoundParams::with(epsilon, beta)
                },
            )
            .map(|r| r.route.map(parts))
            .map_err(|e| e.to_string()),
        BatchAlgo::Greedy { alpha, beam } => engine
            .greedy(
                query,
                &GreedyParams {
                    alpha,
                    beam_width: beam.max(1),
                    ..GreedyParams::default()
                },
            )
            .map(|r| {
                r.filter(|g| g.is_feasible()).map(|g| {
                    let nodes = g.route.nodes().iter().map(|n| n.0).collect();
                    (g.objective, g.budget, nodes)
                })
            })
            .map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_data::{generate_roadnet, RoadNetConfig};

    fn small_config() -> BatchConfig {
        BatchConfig {
            workload: WorkloadConfig {
                keyword_counts: vec![1, 2],
                queries_per_set: 8,
                frequency_weighted: true,
                max_euclidean_km: None,
                min_doc_fraction: 0.0,
                seed: 11,
            },
            delta: 40.0,
            canned: None,
            sharding: None,
            algo: BatchAlgo::BucketBound {
                epsilon: 0.5,
                beta: 1.2,
            },
            threads: 4,
        }
    }

    #[test]
    fn batch_runs_all_queries_in_order() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let report = run_batch(&g, &small_config());
        assert_eq!(report.outcomes.len(), 16);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, i);
        }
        assert_eq!(report.per_set.len(), 2);
        assert_eq!(report.per_set.iter().map(|s| s.queries).sum::<usize>(), 16);
        assert!(report.feasible() > 0, "no feasible routes in small batch");
        assert_eq!(report.errors(), 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let mut cfg = small_config();
        let par = run_batch(&g, &cfg);
        cfg.threads = 1;
        let seq = run_batch(&g, &cfg);
        let objs = |r: &BatchReport| -> Vec<Option<u64>> {
            r.outcomes
                .iter()
                .map(|o| o.objective.map(f64::to_bits))
                .collect()
        };
        assert_eq!(objs(&par), objs(&seq));
    }

    #[test]
    fn all_algorithms_produce_reports() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let mut cfg = small_config();
        for algo in [
            BatchAlgo::OsScaling { epsilon: 0.5 },
            BatchAlgo::BucketBound {
                epsilon: 0.5,
                beta: 1.2,
            },
            BatchAlgo::Greedy {
                alpha: 0.5,
                beam: 2,
            },
        ] {
            cfg.algo = algo;
            let report = run_batch(&g, &cfg);
            assert_eq!(report.outcomes.len(), 16);
            assert_eq!(report.algo, algo.name());
            assert!(report.latency().is_some());
            assert!(report.throughput_qps() > 0.0);
        }
    }

    #[test]
    fn duplicate_keyword_counts_stay_separate_sets() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let mut cfg = small_config();
        cfg.workload.keyword_counts = vec![2, 2];
        let report = run_batch(&g, &cfg);
        assert_eq!(report.outcomes.len(), 16);
        assert_eq!(report.per_set.len(), 2);
        // Each outcome belongs to exactly one set; duplicate counts must
        // not double-count.
        assert_eq!(report.per_set.iter().map(|s| s.queries).sum::<usize>(), 16);
        for s in &report.per_set {
            assert_eq!(s.keyword_count, 2);
            assert_eq!(s.queries, 8);
        }
    }

    #[test]
    fn canned_sets_replay_with_their_own_budgets() {
        use kor_data::{generate_world, GenConfig};
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        let cfg = BatchConfig {
            canned: Some(world.query_sets.clone()),
            threads: 2,
            ..BatchConfig::default()
        };
        let report = run_batch(&world.graph, &cfg);
        assert_eq!(report.outcomes.len(), world.query_count());
        assert_eq!(report.per_set.len(), world.query_sets.len());
        for (summary, set) in report.per_set.iter().zip(&world.query_sets) {
            assert_eq!(summary.keyword_count, set.keyword_count);
            assert_eq!(summary.queries, set.queries.len());
        }
        assert_eq!(report.errors(), 0, "canned queries are pre-validated");
        // Replaying is deterministic: same outcomes, bit for bit.
        let again = run_batch(&world.graph, &cfg);
        let objs = |r: &BatchReport| -> Vec<Option<u64>> {
            r.outcomes
                .iter()
                .map(|o| o.objective.map(f64::to_bits))
                .collect()
        };
        assert_eq!(objs(&report), objs(&again));
    }

    #[test]
    fn sharded_replay_matches_unsharded_digest() {
        use kor_data::{compute_sharding, generate_world, GenConfig};
        let world = generate_world(&GenConfig::grid(6, 5, 3));
        for algo in [
            BatchAlgo::OsScaling { epsilon: 0.5 },
            BatchAlgo::BucketBound {
                epsilon: 0.5,
                beta: 1.2,
            },
            BatchAlgo::Greedy {
                alpha: 0.5,
                beam: 2,
            },
        ] {
            let unsharded = run_batch(
                &world.graph,
                &BatchConfig {
                    canned: Some(world.query_sets.clone()),
                    algo,
                    threads: 2,
                    ..BatchConfig::default()
                },
            );
            let sharded = run_batch(
                &world.graph,
                &BatchConfig {
                    canned: Some(world.query_sets.clone()),
                    sharding: Some(compute_sharding(&world.graph, 2)),
                    algo,
                    threads: 2,
                    ..BatchConfig::default()
                },
            );
            assert_eq!(unsharded.shard_routing, None);
            let (local, fanout) = sharded.shard_routing.expect("routed");
            assert_eq!(
                (local + fanout) as usize,
                world.query_count(),
                "every query routed exactly once"
            );
            assert_eq!(
                sharded.result_digest(),
                unsharded.result_digest(),
                "{}: router must be answer-invariant",
                algo.name()
            );
        }
    }

    #[test]
    fn json_summary_is_well_formed() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let report = run_batch(&g, &small_config());
        let json = report.to_json();
        // Must survive the strict parser it is built from.
        let parsed = JsonValue::parse(&json).expect("summary parses");
        assert_eq!(
            parsed.get("algo").and_then(JsonValue::as_str),
            Some("bucket-bound")
        );
        assert_eq!(parsed.get("queries").and_then(JsonValue::as_u64), Some(16));
        assert!(parsed.get("latency_us").is_some());
        assert!(parsed.get("throughput_qps").and_then(JsonValue::as_f64) > Some(0.0));
        assert_eq!(
            parsed
                .get("per_set")
                .and_then(JsonValue::as_arr)
                .map(<[_]>::len),
            Some(2)
        );
    }
}
