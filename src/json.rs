//! Minimal JSON (RFC 8259) values, strict parsing, and rendering.
//!
//! The build environment vendors no `serde_json`, so the facade carries
//! its own small JSON layer, shared by the [`crate::batch`] summary and
//! the [`crate::serve`] wire protocol. It is deliberately strict where
//! the serve protocol needs it to be:
//!
//! * [`JsonValue::parse`] consumes the **entire** input — trailing
//!   garbage is an error (one request per line, nothing hidden after
//!   it);
//! * duplicate object keys are rejected (a request saying
//!   `"budget": 1, "budget": 2` is ambiguous, not last-wins);
//! * only the escape sequences of RFC 8259 are accepted;
//! * nesting is capped at [`MAX_DEPTH`] containers — the parser
//!   recurses per container, and untrusted input must not be able to
//!   pick the stack depth (a stack overflow is a process abort, not an
//!   unwinding panic, so no downstream guard could contain it).
//!
//! Rendering is deterministic: object fields keep insertion order, and
//! numbers use Rust's shortest round-trip `Display` so a parsed value
//! re-renders to an equivalent document. Non-finite numbers render as
//! `null` (JSON has no `NaN`/`Infinity`).
//!
//! ```
//! use kor::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"route":[0,2,7],"objective":6.0}"#).unwrap();
//! assert_eq!(v.get("objective").and_then(JsonValue::as_f64), Some(6.0));
//! assert_eq!(v.render(), r#"{"route":[0,2,7],"objective":6}"#);
//! ```

use std::fmt;

/// Maximum container (array/object) nesting [`JsonValue::parse`]
/// accepts. Far beyond any legitimate wire request, and small enough
/// that the recursive-descent parser stays well inside even a 2 MiB
/// worker-thread stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; fields keep insertion order for deterministic output.
    Obj(Vec<(String, JsonValue)>),
}

/// Error from [`JsonValue::parse`]: a message plus the character offset
/// where parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Character offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at char {}", self.message, self.at)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = Parser {
            chars,
            at: 0,
            depth: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.chars.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON (no added whitespace).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.render_into(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<I>(fields: I) -> JsonValue
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object; `None` for non-objects and missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with an exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(items: Vec<JsonValue>) -> Self {
        JsonValue::Arr(items)
    }
}

/// Appends `s` quoted and escaped per RFC 8259.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser {
    chars: Vec<char>,
    at: usize,
    /// Current container nesting; bounded by [`MAX_DEPTH`] because each
    /// level is a `value -> array/object -> value` recursion frame.
    depth: usize,
}

impl Parser {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            at: self.at,
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        Ok(())
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.at), Some(' ' | '\t' | '\n' | '\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonParseError> {
        self.skip_ws();
        if self.chars.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {c:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.chars.get(self.at) {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        for c in lit.chars() {
            if self.chars.get(self.at) != Some(&c) {
                return Err(self.err("bad literal"));
            }
            self.at += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.at;
        while self
            .chars
            .get(self.at)
            .is_some_and(|c| matches!(c, '-' | '+' | '.' | 'e' | 'E' | '0'..='9'))
        {
            self.at += 1;
        }
        let s: String = self.chars[start..self.at].iter().collect();
        s.parse::<f64>().map(JsonValue::Num).map_err(|_| {
            self.at = start;
            self.err("bad number")
        })
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.at) {
                None => return Err(self.err("unterminated string")),
                Some('"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.at += 1;
                    match self.chars.get(self.at) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let code = self.hex_escape()?;
                            self.at += 4;
                            let c = match code {
                                // High surrogate: must pair with a low
                                // surrogate in a following \u escape.
                                0xD800..=0xDBFF => {
                                    if self.chars.get(self.at + 1..self.at + 3)
                                        != Some(['\\', 'u'].as_slice())
                                    {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.at += 2;
                                    let low = self.hex_escape()?;
                                    self.at += 4;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined).expect("valid supplementary char")
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired surrogate")),
                                other => char::from_u32(other).expect("valid BMP char"),
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.at += 1;
                }
            }
        }
    }

    /// The four hex digits of a `\u` escape; `self.at` must sit on the
    /// `u` (the caller advances past the digits).
    fn hex_escape(&mut self) -> Result<u32, JsonParseError> {
        let hex: String = self
            .chars
            .get(self.at + 1..self.at + 5)
            .ok_or_else(|| self.err("truncated \\u escape"))?
            .iter()
            .collect();
        u32::from_str_radix(&hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.enter()?;
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.get(self.at) == Some(&']') {
            self.at += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.get(self.at) {
                Some(',') => self.at += 1,
                Some(']') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.enter()?;
        self.expect('{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.chars.get(self.at) == Some(&'}') {
            self.at += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.expect(':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.chars.get(self.at) {
                Some(',') => self.at += 1,
                Some('}') => {
                    self.at += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let v =
            JsonValue::parse(r#"{"a":"x\"y","b":[1,2.5,null],"c":{"d":true},"e":false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\"y"));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0].as_f64(), Some(1.0));
        assert_eq!(b[1].as_f64(), Some(2.5));
        assert!(b[2].is_null());
        assert_eq!(
            v.get("c").unwrap().get("d").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(v.get("e").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} x",
            "\"unterminated",
            "truex",
            "{\"a\":1,\"a\":2}",
            "nul",
            "[1 2]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = JsonValue::parse("[1,@]").unwrap_err();
        assert_eq!(e.at, 3);
        assert!(e.to_string().contains("char 3"));
    }

    #[test]
    fn render_round_trips() {
        let src = r#"{"algo":"bucket-bound","n":16,"latency":{"p50":12.5},"sets":[1,2],"none":null,"ok":true}"#;
        let v = JsonValue::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escaping_matches_rfc8259() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let v = JsonValue::Str("tab\there".to_string());
        assert_eq!(v.render(), "\"tab\\there\"");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn numbers_render_shortest_round_trip() {
        for n in [0.0, 6.0, 10.0, 2.5, 0.1, 1234567.875, -3.25] {
            let rendered = JsonValue::Num(n).render();
            assert_eq!(rendered.parse::<f64>().unwrap(), n, "{rendered}");
        }
        assert_eq!(JsonValue::Num(6.0).render(), "6");
    }

    #[test]
    fn integer_accessor_is_strict() {
        assert_eq!(JsonValue::Num(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Num(7.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn obj_builder_and_from_impls() {
        let v = JsonValue::obj([
            ("name", JsonValue::from("kor")),
            ("n", JsonValue::from(3_u64)),
            ("ok", JsonValue::from(true)),
            ("items", JsonValue::from(vec![JsonValue::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"kor","n":3,"ok":true,"items":[null]}"#
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        // Literal non-ASCII and the equivalent BMP \u escape.
        let v = JsonValue::parse("\"caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
        let v = JsonValue::parse("\"caf\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
    }

    #[test]
    fn surrogate_pairs_combine() {
        // U+1F600 as the standard UTF-16 escape pair -- what e.g.
        // Python's json.dumps emits by default for non-BMP characters.
        let v = JsonValue::parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Mixed with ordinary text, and inside object keys.
        let v = JsonValue::parse("{\"a\\ud83d\\ude00b\":1}").unwrap();
        assert_eq!(v.get("a\u{1F600}b").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // A ~100k-deep array fits comfortably under the 1 MiB request
        // cap but would blow a 2 MiB worker stack if the parser
        // recursed per bracket — a process abort, not a catchable
        // panic, so the parser must refuse before recursing.
        for doc in ["[".repeat(100_000), "[{\"k\":".repeat(50_000)] {
            let e = JsonValue::parse(&doc).unwrap_err();
            assert!(e.message.contains("nesting too deep"), "{e}");
        }
    }

    #[test]
    fn nesting_up_to_the_limit_parses() {
        let doc = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&doc).is_ok());
        let over = format!(
            "{}null{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(JsonValue::parse(&over).is_err());
        // Depth counts open containers, not total containers: a long
        // flat array of shallow objects is fine.
        let flat = format!("[{}{{}}]", "{},".repeat(10_000));
        assert!(JsonValue::parse(&flat).is_ok());
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in [
            r#""\uD83D""#,
            r#""\uD83Dxx""#,
            r#""\uD83D\n""#,
            r#""\uD83DA""#,
            r#""\uDE00""#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad} should not parse");
        }
    }
}
